package simnet

import (
	"fmt"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/substrate"
	"macedon/internal/topology"
)

// MTU is the largest datagram the emulated network carries, matching
// Ethernet framing as ModelNet does.
const MTU = 1500

// Stats aggregates network-wide packet accounting.
type Stats struct {
	Sent           uint64 // datagrams entering the network
	Delivered      uint64 // datagrams handed to a receiving endpoint
	QueueDrops     uint64 // datagrams dropped at a full pipe queue
	RandomLoss     uint64 // datagrams dropped by the loss model
	DownDrops      uint64 // datagrams dropped at a failed node
	LinkDownDrops  uint64 // datagrams dropped entering a failed pipe
	DegradeLoss    uint64 // datagrams dropped by per-pipe degradation
	PartitionDrops uint64 // datagrams dropped by a network partition
	NoRouteDrops   uint64 // datagrams with no surviving route
	Bytes          uint64 // payload bytes entering the network
}

// LinkCounters is per-pipe accounting used by overhead metrics.
type LinkCounters struct {
	Packets uint64
	Bytes   uint64
	Drops   uint64
}

// Config tunes emulation behaviour.
type Config struct {
	// LossRate uniformly drops this fraction of datagrams per hop.
	// Zero by default: loss then only arises from queue overflow.
	LossRate float64
	// PerHopOverhead adds fixed per-router forwarding delay.
	PerHopOverhead time.Duration
}

// Network emulates the topology: it implements substrate.Network by routing
// each datagram along the shortest path and applying per-pipe bandwidth
// serialization, propagation delay, and drop-tail queuing at every hop.
type Network struct {
	sched  *Scheduler
	graph  *topology.Graph
	routes *topology.Routes // failure-free oracle, for metrics
	live   *topology.Routes // forwarding oracle, routes around failed links
	cfg    Config

	links []linkState // indexed by topology.LinkID
	eps   map[overlay.Address]*endpoint
	paths map[pathKey][]topology.LinkID

	blocked  map[topology.LinkID]bool
	degraded map[topology.LinkID]Degradation
	sides    map[overlay.Address]int // partition sides; nil = healed

	stats Stats
}

type linkState struct {
	busyUntil   time.Duration // virtual instant the pipe finishes its queue
	queuedBytes int
	ctr         LinkCounters
}

type pathKey struct{ src, dst topology.RouterID }

// New builds an emulated network over a finished topology. The graph must
// already have all clients attached.
func New(sched *Scheduler, g *topology.Graph, cfg Config) *Network {
	n := &Network{
		sched:    sched,
		graph:    g,
		routes:   topology.NewRoutes(g),
		cfg:      cfg,
		links:    make([]linkState, g.NumLinks()),
		eps:      make(map[overlay.Address]*endpoint),
		paths:    make(map[pathKey][]topology.LinkID),
		blocked:  make(map[topology.LinkID]bool),
		degraded: make(map[topology.LinkID]Degradation),
	}
	n.live = n.routes
	for _, addr := range g.Clients() {
		n.eps[addr] = &endpoint{net: n, addr: addr}
	}
	return n
}

// Scheduler returns the clock driving the network.
func (n *Network) Scheduler() *Scheduler { return n.sched }

// Routes exposes the routing oracle (for direct-latency metrics).
func (n *Network) Routes() *topology.Routes { return n.routes }

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// Stats returns a snapshot of network-wide counters.
func (n *Network) Stats() Stats { return n.stats }

// LinkCounters returns a copy of the per-pipe counters for a link.
func (n *Network) LinkCounters(l topology.LinkID) LinkCounters { return n.links[l].ctr }

// Now implements substrate.Clock.
func (n *Network) Now() time.Time { return n.sched.Now() }

// After implements substrate.Clock.
func (n *Network) After(d time.Duration, fn func()) substrate.Timer {
	return n.sched.After(d, fn)
}

// Endpoint implements substrate.Network.
func (n *Network) Endpoint(addr overlay.Address) (substrate.Endpoint, error) {
	ep, ok := n.eps[addr]
	if !ok {
		return nil, fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	return ep, nil
}

// SetDown marks a node failed (true) or recovered (false): all datagrams to
// or from it are silently dropped, emulating a host crash for
// failure-detection experiments.
func (n *Network) SetDown(addr overlay.Address, down bool) error {
	ep, ok := n.eps[addr]
	if !ok {
		return fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	ep.down = down
	return nil
}

func (n *Network) path(src, dst topology.RouterID) []topology.LinkID {
	k := pathKey{src, dst}
	if p, ok := n.paths[k]; ok {
		return p
	}
	p := n.live.Path(src, dst)
	n.paths[k] = p
	return p
}

// packet is one datagram in flight.
type packet struct {
	src, dst overlay.Address
	payload  []byte
	path     []topology.LinkID
	hop      int
}

func (n *Network) send(src *endpoint, dst overlay.Address, payload []byte) error {
	if len(payload) > MTU {
		return fmt.Errorf("simnet: datagram of %d bytes exceeds MTU %d", len(payload), MTU)
	}
	dstEp, ok := n.eps[dst]
	if !ok {
		return fmt.Errorf("simnet: destination %v is not attached", dst)
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(len(payload))
	if src.down || dstEp.down {
		n.stats.DownDrops++
		return nil // like IP: silently dropped, sender learns nothing
	}
	if n.Partitioned(src.addr, dst) {
		n.stats.PartitionDrops++
		return nil // partitions drop silently, like a blackholed route
	}
	if src.addr == dst {
		// Loopback bypasses the topology, as the kernel would.
		n.sched.post(0, func() { n.deliver(dstEp, src.addr, payload) })
		return nil
	}
	sv, _ := n.graph.ClientVertex(src.addr)
	dv, _ := n.graph.ClientVertex(dst)
	path := n.path(sv, dv)
	if path == nil {
		if len(n.blocked) > 0 {
			// Link failures severed every route: drop like a blackhole.
			n.stats.NoRouteDrops++
			return nil
		}
		return fmt.Errorf("simnet: no route from %v to %v", src.addr, dst)
	}
	pkt := &packet{src: src.addr, dst: dst, payload: payload, path: path}
	n.enqueue(pkt)
	return nil
}

// enqueue places pkt at the entrance of its current hop's pipe.
func (n *Network) enqueue(pkt *packet) {
	l := pkt.path[pkt.hop]
	if n.blocked[l] {
		// The pipe failed (possibly after this packet's path was chosen):
		// everything entering it is lost.
		n.stats.LinkDownDrops++
		return
	}
	link := n.graph.Link(l)
	ls := &n.links[l]
	size := len(pkt.payload) + headerOverhead
	if ls.queuedBytes+size > link.QueueBytes {
		ls.ctr.Drops++
		n.stats.QueueDrops++
		return
	}
	if n.cfg.LossRate > 0 && n.sched.rng.Float64() < n.cfg.LossRate {
		n.stats.RandomLoss++
		return
	}
	deg, isDegraded := n.degraded[l]
	if isDegraded && deg.LossRate > 0 && n.sched.rng.Float64() < deg.LossRate {
		n.stats.DegradeLoss++
		return
	}
	ls.queuedBytes += size
	ls.ctr.Packets++
	ls.ctr.Bytes += uint64(size)

	now := n.sched.now
	start := now
	if ls.busyUntil > start {
		start = ls.busyUntil
	}
	txDone := start + txTime(size, link.Bandwidth)
	ls.busyUntil = txDone
	latency := link.Latency
	if isDegraded && deg.LatencyFactor > 0 {
		latency = time.Duration(float64(latency) * deg.LatencyFactor)
	}
	arrive := txDone + latency + n.cfg.PerHopOverhead

	// The packet's bytes leave the queue when serialization completes.
	n.sched.post(txDone-now, func() { ls.queuedBytes -= size })
	n.sched.post(arrive-now, func() { n.arriveHop(pkt) })
}

// headerOverhead models IP+UDP framing so bandwidth accounting matches what
// a real pipe would carry.
const headerOverhead = 28

func txTime(sizeBytes int, bwBitsPerSec int64) time.Duration {
	if bwBitsPerSec <= 0 {
		return 0
	}
	return time.Duration(int64(sizeBytes) * 8 * int64(time.Second) / bwBitsPerSec)
}

func (n *Network) arriveHop(pkt *packet) {
	pkt.hop++
	if pkt.hop < len(pkt.path) {
		n.enqueue(pkt)
		return
	}
	ep, ok := n.eps[pkt.dst]
	if !ok || ep.down {
		n.stats.DownDrops++
		return
	}
	if n.Partitioned(pkt.src, pkt.dst) {
		// The partition formed while the datagram was in flight.
		n.stats.PartitionDrops++
		return
	}
	n.deliver(ep, pkt.src, pkt.payload)
}

func (n *Network) deliver(ep *endpoint, src overlay.Address, payload []byte) {
	n.stats.Delivered++
	if ep.recv != nil {
		ep.recv(src, payload)
	}
}

// endpoint implements substrate.Endpoint over the emulated network.
type endpoint struct {
	net  *Network
	addr overlay.Address
	recv func(src overlay.Address, payload []byte)
	down bool
}

func (e *endpoint) Addr() overlay.Address { return e.addr }
func (e *endpoint) MTU() int              { return MTU }

func (e *endpoint) Send(dst overlay.Address, payload []byte) error {
	return e.net.send(e, dst, payload)
}

func (e *endpoint) SetRecv(fn func(src overlay.Address, payload []byte)) {
	if e.recv != nil {
		panic(fmt.Sprintf("simnet: receive handler for %v set twice", e.addr))
	}
	e.recv = fn
}
