package simnet

import (
	"fmt"
	"sync"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/substrate"
	"macedon/internal/topology"
)

// MTU is the largest datagram the emulated network carries, matching
// Ethernet framing as ModelNet does.
const MTU = 1500

// Stats aggregates network-wide packet accounting.
type Stats struct {
	Sent           uint64 // datagrams entering the network
	Delivered      uint64 // datagrams handed to a receiving endpoint
	QueueDrops     uint64 // datagrams dropped at a full pipe queue
	RandomLoss     uint64 // datagrams dropped by the loss model
	DownDrops      uint64 // datagrams dropped at a failed node
	LinkDownDrops  uint64 // datagrams dropped entering a failed pipe
	DegradeLoss    uint64 // datagrams dropped by per-pipe degradation
	PartitionDrops uint64 // datagrams dropped by a network partition
	NoRouteDrops   uint64 // datagrams with no surviving route
	Bytes          uint64 // payload bytes entering the network
}

func (a Stats) add(b Stats) Stats {
	return Stats{
		Sent:           a.Sent + b.Sent,
		Delivered:      a.Delivered + b.Delivered,
		QueueDrops:     a.QueueDrops + b.QueueDrops,
		RandomLoss:     a.RandomLoss + b.RandomLoss,
		DownDrops:      a.DownDrops + b.DownDrops,
		LinkDownDrops:  a.LinkDownDrops + b.LinkDownDrops,
		DegradeLoss:    a.DegradeLoss + b.DegradeLoss,
		PartitionDrops: a.PartitionDrops + b.PartitionDrops,
		NoRouteDrops:   a.NoRouteDrops + b.NoRouteDrops,
		Bytes:          a.Bytes + b.Bytes,
	}
}

// LinkCounters is per-pipe accounting used by overhead metrics.
type LinkCounters struct {
	Packets uint64
	Bytes   uint64
	Drops   uint64
}

// Partitioner names for Config.Partitioner.
const (
	// PartitionerStriped assigns vertex v to shard v % nshards: perfectly
	// balanced, oblivious to the topology. With low-latency access links
	// spread across shards the conservative lookahead collapses to the
	// global minimum link latency. The default; also selected by "".
	PartitionerStriped = "striped"
	// PartitionerLatency clusters low-latency cliques onto one shard
	// (capacity-bounded, deterministic — see topology.PartitionLatency), so
	// only higher-latency core links cross shards and the lookahead window
	// widens. Traces are byte-identical to striped runs: execution order is
	// defined by (time, actor, seq) keys that never depend on placement.
	PartitionerLatency = "latency"
)

// Config tunes emulation behaviour.
type Config struct {
	// LossRate uniformly drops this fraction of datagrams per hop.
	// Zero by default: loss then only arises from queue overflow.
	LossRate float64
	// Partitioner selects the vertex→shard assignment strategy:
	// PartitionerStriped (default) or PartitionerLatency. Any assignment
	// yields the same traces; the choice only moves the lookahead window
	// and therefore wall-clock scaling.
	Partitioner string
	// PerHopOverhead adds fixed per-router forwarding delay.
	PerHopOverhead time.Duration
	// OracleCacheSize bounds how many failure-set routing oracles the
	// network retains (LRU). 0 selects DefaultOracleCacheSize. Scenarios
	// that cycle through many distinct link-failure sets would otherwise
	// accumulate one oracle (and its shortest-path trees) per set.
	OracleCacheSize int
	// OracleTreeBudget bounds the shortest-path trees cached inside each
	// routing oracle (see topology.Routes.SetTreeBudget). 0 selects
	// DefaultOracleTreeBudget; negative means unbounded.
	OracleTreeBudget int
}

// Default bounds for routing-oracle memory.
const (
	DefaultOracleCacheSize  = 4
	DefaultOracleTreeBudget = 1024
)

// Network emulates the topology: it implements substrate.Network by routing
// each datagram along the shortest path and applying per-pipe bandwidth
// serialization, propagation delay, and drop-tail queuing at every hop.
//
// When the scheduler is sharded, every vertex of the topology (routers and
// client endpoints alike) is assigned to a shard, and all events touching a
// vertex's state execute on its shard. Packets hop from vertex to vertex;
// a hop whose endpoints live on different shards is handed off through the
// scheduler's cross-shard path, which the conservative lookahead (the
// minimum cross-shard link latency) makes safe and deterministic.
type Network struct {
	sched  *Scheduler
	graph  *topology.Graph
	routes *topology.Routes // failure-free oracle, for metrics
	live   *topology.Routes // forwarding oracle, routes around failed links
	cfg    Config

	nshards     int
	vertexShard []int32 // topology.RouterID -> shard
	numVertices uint64
	lossSalt    uint64

	links   []linkState // indexed by topology.LinkID
	eps     map[overlay.Address]*endpoint
	pathsBy []shardPaths // per-shard path cache

	blocked  map[topology.LinkID]bool
	degraded map[topology.LinkID]Degradation
	sides    map[overlay.Address]int // partition sides; nil = healed

	statsBy []shardStats // per-shard counters, summed on demand

	// pktPools recycles packet records per shard; pktGen pins packets that a
	// checkpoint's copied event heaps may still reference (see allocPacket).
	pktPools []packetPool
	pktGen   uint64

	oracles         oracleCache
	oracleEvictions uint64
}

// packetPool is one shard's free list of packet records, padded so
// neighbouring shards' pool headers don't share a cache line. The three
// counters account for the recycler, not the pool's residency: whether a
// Get hits a pooled record depends on GC timing, but how many records were
// requested, recycled, and pinned is a pure function of the event order —
// deterministic at every shard count in aggregate. They are bumped only by
// the owning shard's goroutine (plain adds) and summed at quiescent points.
type packetPool struct {
	pool     sync.Pool
	gets     uint64 // allocPacket calls
	recycled uint64 // terminal packets returned to the pool
	pinned   uint64 // terminal packets left to the GC (snapshot generation pin)
	_        [40]byte
}

// StateCopyOpaque marks the pool as opaque to the statecopy walk: a free
// list is scratch state, never part of a checkpoint.
func (p *packetPool) StateCopyOpaque() {}

type shardPaths struct {
	m map[pathKey][]topology.LinkID
	_ [40]byte // keep neighbouring shards' maps off one cache line
}

// shardStats pads each shard's counters to cache-line multiples: every
// packet bumps several of them on the hot path, and unpadded neighbours
// would false-share lines between workers.
type shardStats struct {
	Stats
	_ [48]byte
}

type linkState struct {
	busyUntil   time.Duration // virtual instant the pipe finishes its queue
	queuedBytes int
	ctr         LinkCounters
	seq         uint64 // the link actor's event counter
	lossSeq     uint64 // per-link deterministic loss-draw counter
}

type pathKey struct{ src, dst topology.RouterID }

// New builds an emulated network over a finished topology. The graph must
// already have all clients attached. The shard count comes from the
// scheduler; New partitions the vertices and installs the conservative
// lookahead window.
func New(sched *Scheduler, g *topology.Graph, cfg Config) *Network {
	nsh := sched.Shards()
	n := &Network{
		sched:       sched,
		graph:       g,
		cfg:         cfg,
		nshards:     nsh,
		numVertices: uint64(g.NumRouters()),
		lossSalt:    splitmix64(uint64(sched.Seed()) ^ 0x6d616365646f6e21),
		links:       make([]linkState, g.NumLinks()),
		eps:         make(map[overlay.Address]*endpoint),
		pathsBy:     make([]shardPaths, nsh),
		blocked:     make(map[topology.LinkID]bool),
		degraded:    make(map[topology.LinkID]Degradation),
		statsBy:     make([]shardStats, nsh),
	}
	if n.cfg.OracleCacheSize <= 0 {
		n.cfg.OracleCacheSize = DefaultOracleCacheSize
	}
	if n.cfg.OracleTreeBudget == 0 {
		// Trees are only ever computed toward client vertices (packets
		// terminate at endpoints), so the working set is one tree per
		// client: default to that, floored at DefaultOracleTreeBudget. A
		// budget below the client count would thrash recomputation on
		// all-pairs traffic at large scale.
		n.cfg.OracleTreeBudget = len(g.Clients())
		if n.cfg.OracleTreeBudget < DefaultOracleTreeBudget {
			n.cfg.OracleTreeBudget = DefaultOracleTreeBudget
		}
	}
	n.routes = topology.NewRoutes(g)
	n.routes.SetTreeBudget(n.cfg.OracleTreeBudget)
	n.live = n.routes
	switch cfg.Partitioner {
	case "", PartitionerStriped:
		n.vertexShard = topology.PartitionStriped(g, nsh)
	case PartitionerLatency:
		n.vertexShard = topology.PartitionLatency(g, nsh)
	default:
		panic(fmt.Sprintf("simnet: unknown partitioner %q (want %q or %q)",
			cfg.Partitioner, PartitionerStriped, PartitionerLatency))
	}
	n.pktPools = make([]packetPool, nsh)
	for i := range n.pathsBy {
		n.pathsBy[i].m = make(map[pathKey][]topology.LinkID)
	}
	if sched.net != nil {
		panic("simnet: scheduler already drives a network; flat event records admit exactly one")
	}
	sched.net = n
	for _, addr := range g.Clients() {
		v, _ := g.ClientVertex(addr)
		n.eps[addr] = &endpoint{net: n, addr: addr, vertex: v, shard: int(n.vertexShard[v])}
	}
	if nsh > 1 {
		if w, ok := topology.MinCrossShardLatency(g, func(v topology.RouterID) int { return int(n.vertexShard[v]) }); ok {
			sched.SetLookahead(w)
		} else {
			// No cross-shard links at all: shards never interact.
			sched.SetLookahead(1 << 56)
		}
	}
	return n
}

// Actor identifiers for the deterministic event order: 0 is the global
// actor, vertices follow, then directed links. The numbering depends only
// on the topology, never on the shard count.
func (n *Network) vertexActor(v topology.RouterID) uint64 { return 1 + uint64(v) }
func (n *Network) linkActor(l topology.LinkID) uint64     { return 1 + n.numVertices + uint64(l) }

// shardOf returns the shard owning a vertex.
func (n *Network) shardOf(v topology.RouterID) int { return int(n.vertexShard[v]) }

// Scheduler returns the clock driving the network.
func (n *Network) Scheduler() *Scheduler { return n.sched }

// Routes exposes the routing oracle (for direct-latency metrics).
func (n *Network) Routes() *topology.Routes { return n.routes }

// Graph returns the underlying topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// Stats returns a snapshot of network-wide counters, summed across shards.
// Call it from the coordinating goroutine (between epochs), not from event
// handlers of a sharded run.
func (n *Network) Stats() Stats {
	var sum Stats
	for i := range n.statsBy {
		sum = sum.add(n.statsBy[i].Stats)
	}
	return sum
}

// LinkCounters returns a copy of the per-pipe counters for a link.
func (n *Network) LinkCounters(l topology.LinkID) LinkCounters { return n.links[l].ctr }

// Now implements substrate.Clock.
func (n *Network) Now() time.Time { return n.sched.Now() }

// After implements substrate.Clock using the global actor: callbacks run at
// epoch barriers when the loop is sharded. Emulated nodes must use their
// NodeSubstrate clock instead so their timers run on their own shard.
func (n *Network) After(d time.Duration, fn func()) substrate.Timer {
	return n.sched.After(d, fn)
}

// Endpoint implements substrate.Network.
func (n *Network) Endpoint(addr overlay.Address) (substrate.Endpoint, error) {
	ep, ok := n.eps[addr]
	if !ok {
		return nil, fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	return ep, nil
}

// NodeSubstrate is the shard-bound substrate.Network handed to one emulated
// node: its clock reads the owning shard's virtual time and its timers run
// on that shard, which is what lets node event handlers execute in parallel.
type NodeSubstrate struct {
	net *Network
	ep  *endpoint
}

// NodeNet returns the shard-bound substrate for an attached address. Nodes
// spawned through the harness always use this; constructing a node directly
// over the Network still works but serializes its timers through barriers.
func (n *Network) NodeNet(addr overlay.Address) (*NodeSubstrate, error) {
	ep, ok := n.eps[addr]
	if !ok {
		return nil, fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	if ep.sub == nil {
		ep.sub = &NodeSubstrate{net: n, ep: ep}
	}
	return ep.sub, nil
}

// Shard returns the shard the node's endpoint lives on.
func (ns *NodeSubstrate) Shard() int { return ns.ep.shard }

// Now implements substrate.Clock with the owning shard's virtual time.
func (ns *NodeSubstrate) Now() time.Time { return epoch.Add(ns.Elapsed()) }

// Elapsed returns the owning shard's virtual time since the epoch.
func (ns *NodeSubstrate) Elapsed() time.Duration { return ns.net.sched.timeOn(ns.ep.shard) }

// After implements substrate.Clock on the owning shard, keyed by the
// endpoint's actor so timer order is deterministic across shard counts.
func (ns *NodeSubstrate) After(d time.Duration, fn func()) substrate.Timer {
	if d < 0 {
		d = 0
	}
	ep := ns.ep
	t := &simTimer{}
	ep.actorSeq++
	ns.net.sched.schedule(ep.shard, ns.Elapsed()+d, ns.net.vertexActor(ep.vertex), ep.actorSeq, fn, t)
	return t
}

// Endpoint implements substrate.Network.
func (ns *NodeSubstrate) Endpoint(addr overlay.Address) (substrate.Endpoint, error) {
	return ns.net.Endpoint(addr)
}

// SetDown marks a node failed (true) or recovered (false): all datagrams to
// or from it are silently dropped, emulating a host crash for
// failure-detection experiments. Like all dynamics mutators it must run
// from the coordinating goroutine or a global-actor event (a barrier).
func (n *Network) SetDown(addr overlay.Address, down bool) error {
	ep, ok := n.eps[addr]
	if !ok {
		return fmt.Errorf("simnet: address %v is not attached to the topology", addr)
	}
	ep.down = down
	return nil
}

// path resolves (and caches, per shard) the live route between two vertices.
func (n *Network) path(shard int, src, dst topology.RouterID) []topology.LinkID {
	k := pathKey{src, dst}
	cache := n.pathsBy[shard].m
	if p, ok := cache[k]; ok {
		return p
	}
	p := n.live.Path(src, dst)
	cache[k] = p
	return p
}

// packet is one datagram in flight. It is immutable for the duration of the
// flight: the hop index travels in the event record instead of a mutable
// field, so a checkpoint's copied event heap can replay the packet's
// remaining hops after a restore without the branch's progress having
// corrupted it.
//
// Records are pooled per shard. Exactly one pending event references a
// packet at any instant (each arrival schedules the next), so the terminal
// event — delivery or a drop — owns it and may recycle it. gen pins packets
// across checkpoints: Network.Snapshot bumps pktGen, and releasePacket only
// recycles a packet whose gen matches the current generation. A packet
// created before the latest snapshot might be referenced by that snapshot's
// copied heap, so it stays immutable forever and is left to the GC.
type packet struct {
	src, dst overlay.Address
	payload  []byte
	path     []topology.LinkID
	gen      uint64
}

// allocPacket takes a packet record from the executing shard's pool.
func (n *Network) allocPacket(shard int) *packet {
	p := &n.pktPools[shard]
	p.gets++
	if pkt, ok := p.pool.Get().(*packet); ok {
		pkt.gen = n.pktGen
		return pkt
	}
	return &packet{gen: n.pktGen}
}

// releasePacket returns a terminal packet to the executing shard's pool,
// unless a snapshot generation pinned it. Fields are cleared so a recycled
// record can never leak a prior payload or path to its next flight.
func (n *Network) releasePacket(shard int, pkt *packet) {
	p := &n.pktPools[shard]
	if pkt.gen != n.pktGen {
		p.pinned++
		return // an older generation: some snapshot heap may reference it
	}
	p.recycled++
	*pkt = packet{gen: pkt.gen}
	p.pool.Put(pkt)
}

// PoolStats aggregates the packet recycler's accounting across shards.
type PoolStats struct {
	Gets     uint64 // packet records requested from the pools
	Recycled uint64 // terminal packets returned for reuse
	Pinned   uint64 // terminal packets pinned by a snapshot generation
}

// PoolStats sums the per-shard recycler counters. Call it from the
// coordinating goroutine (between epochs), like Stats.
func (n *Network) PoolStats() PoolStats {
	var s PoolStats
	for i := range n.pktPools {
		s.Gets += n.pktPools[i].gets
		s.Recycled += n.pktPools[i].recycled
		s.Pinned += n.pktPools[i].pinned
	}
	return s
}

func (n *Network) send(src *endpoint, dst overlay.Address, payload []byte) error {
	if len(payload) > MTU {
		return fmt.Errorf("simnet: datagram of %d bytes exceeds MTU %d", len(payload), MTU)
	}
	dstEp, ok := n.eps[dst]
	if !ok {
		return fmt.Errorf("simnet: destination %v is not attached", dst)
	}
	shard := src.shard
	st := &n.statsBy[shard].Stats
	st.Sent++
	st.Bytes += uint64(len(payload))
	if src.down || dstEp.down {
		st.DownDrops++
		return nil // like IP: silently dropped, sender learns nothing
	}
	if n.Partitioned(src.addr, dst) {
		st.PartitionDrops++
		return nil // partitions drop silently, like a blackholed route
	}
	if src.addr == dst {
		// Loopback bypasses the topology, as the kernel would.
		src.actorSeq++
		pkt := n.allocPacket(shard)
		pkt.src, pkt.dst, pkt.payload = src.addr, dst, payload
		n.sched.scheduleEv(shard, n.sched.timeOn(shard), n.vertexActor(src.vertex), src.actorSeq,
			event{kind: evDeliver, pkt: pkt, shard: int32(shard)})
		return nil
	}
	path := n.path(shard, src.vertex, dstEp.vertex)
	if path == nil {
		if len(n.blocked) > 0 {
			// Link failures severed every route: drop like a blackhole.
			st.NoRouteDrops++
			return nil
		}
		return fmt.Errorf("simnet: no route from %v to %v", src.addr, dst)
	}
	pkt := n.allocPacket(shard)
	pkt.src, pkt.dst, pkt.payload, pkt.path = src.addr, dst, payload, path
	n.enqueue(shard, pkt, 0)
	return nil
}

// enqueue places pkt at the entrance of hop's pipe. It executes on the shard
// owning the pipe's tail vertex, which also owns the pipe.
func (n *Network) enqueue(shard int, pkt *packet, hop int) {
	l := pkt.path[hop]
	st := &n.statsBy[shard].Stats
	if n.blocked[l] {
		// The pipe failed (possibly after this packet's path was chosen):
		// everything entering it is lost.
		st.LinkDownDrops++
		n.releasePacket(shard, pkt)
		return
	}
	link := n.graph.Link(l)
	ls := &n.links[l]
	size := len(pkt.payload) + headerOverhead
	if ls.queuedBytes+size > link.QueueBytes {
		ls.ctr.Drops++
		st.QueueDrops++
		n.releasePacket(shard, pkt)
		return
	}
	if n.cfg.LossRate > 0 && n.lossDraw(ls, l) < n.cfg.LossRate {
		st.RandomLoss++
		n.releasePacket(shard, pkt)
		return
	}
	deg, isDegraded := n.degraded[l]
	if isDegraded && deg.LossRate > 0 && n.lossDraw(ls, l) < deg.LossRate {
		st.DegradeLoss++
		n.releasePacket(shard, pkt)
		return
	}
	ls.queuedBytes += size
	ls.ctr.Packets++
	ls.ctr.Bytes += uint64(size)

	now := n.sched.timeOn(shard)
	start := now
	if ls.busyUntil > start {
		start = ls.busyUntil
	}
	txDone := start + txTime(size, link.Bandwidth)
	ls.busyUntil = txDone
	latency := link.Latency
	if isDegraded && deg.LatencyFactor > 0 {
		latency = time.Duration(float64(latency) * deg.LatencyFactor)
	}
	arrive := txDone + latency + n.cfg.PerHopOverhead

	actor := n.linkActor(l)
	// The packet's bytes leave the queue when serialization completes: an
	// event on the pipe's own shard.
	ls.seq++
	n.sched.scheduleEv(shard, txDone, actor, ls.seq,
		event{kind: evRelease, link: l, arg: int32(size)})
	// The arrival advances the packet to the pipe's head vertex, possibly on
	// another shard. Cross-shard arrivals are always at least the link
	// latency away, which is what the lookahead window guarantees.
	next := n.shardOf(link.To)
	ls.seq++
	n.sched.scheduleEv(next, arrive, actor, ls.seq,
		event{kind: evArrive, pkt: pkt, arg: int32(hop + 1), shard: int32(next)})
}

// lossDraw produces the next uniform [0,1) variate of a pipe's private loss
// process. Unlike a shared PRNG, the sequence depends only on the order of
// packets entering this pipe, so it is identical for every shard count.
func (n *Network) lossDraw(ls *linkState, l topology.LinkID) float64 {
	ls.lossSeq++
	return unitFloat(splitmix64(n.lossSalt ^ (uint64(l)+1)*0x9E3779B97F4A7C15 + ls.lossSeq))
}

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unitFloat maps 64 random bits onto [0,1).
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// headerOverhead models IP+UDP framing so bandwidth accounting matches what
// a real pipe would carry.
const headerOverhead = 28

func txTime(sizeBytes int, bwBitsPerSec int64) time.Duration {
	if bwBitsPerSec <= 0 {
		return 0
	}
	return time.Duration(int64(sizeBytes) * 8 * int64(time.Second) / bwBitsPerSec)
}

func (n *Network) arriveHop(shard int, pkt *packet, hop int) {
	if hop < len(pkt.path) {
		n.enqueue(shard, pkt, hop)
		return
	}
	st := &n.statsBy[shard].Stats
	ep, ok := n.eps[pkt.dst]
	if !ok || ep.down {
		st.DownDrops++
		n.releasePacket(shard, pkt)
		return
	}
	if n.Partitioned(pkt.src, pkt.dst) {
		// The partition formed while the datagram was in flight.
		st.PartitionDrops++
		n.releasePacket(shard, pkt)
		return
	}
	n.deliver(shard, ep, pkt.src, pkt.payload)
	n.releasePacket(shard, pkt)
}

// deliverLoopback executes an evDeliver record: same-address traffic that
// bypassed the topology. Endpoints are never removed from eps, so the
// exec-time lookup sees exactly the endpoint the send saw.
func (n *Network) deliverLoopback(shard int, pkt *packet) {
	n.deliver(shard, n.eps[pkt.dst], pkt.src, pkt.payload)
	n.releasePacket(shard, pkt)
}

func (n *Network) deliver(shard int, ep *endpoint, src overlay.Address, payload []byte) {
	n.statsBy[shard].Stats.Delivered++
	if ep.recv != nil {
		ep.recv(src, payload)
	}
}

// endpoint implements substrate.Endpoint over the emulated network.
type endpoint struct {
	net      *Network
	addr     overlay.Address
	vertex   topology.RouterID
	shard    int
	actorSeq uint64
	sub      *NodeSubstrate
	recv     func(src overlay.Address, payload []byte)
	down     bool
}

func (e *endpoint) Addr() overlay.Address { return e.addr }
func (e *endpoint) MTU() int              { return MTU }

func (e *endpoint) Send(dst overlay.Address, payload []byte) error {
	return e.net.send(e, dst, payload)
}

func (e *endpoint) SetRecv(fn func(src overlay.Address, payload []byte)) {
	if e.recv != nil {
		panic(fmt.Sprintf("simnet: receive handler for %v set twice", e.addr))
	}
	e.recv = fn
}
