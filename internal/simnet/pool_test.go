package simnet

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/topology"
)

// poolNet builds a small emulated network for pool tests.
func poolNet(t *testing.T, shards int, cfg Config) (*Scheduler, *Network, []overlay.Address) {
	t.Helper()
	g, err := topology.INET(topology.DefaultINET(40, 5))
	if err != nil {
		t.Fatal(err)
	}
	addrs := topology.AttachClients(g, 8, 1, topology.DefaultAccess, 5)
	s := NewSharded(7, shards)
	n := New(s, g, cfg)
	return s, n, addrs
}

// TestPoolRecycleClearsRecord checks the free-list contract directly: a
// released packet record is cleared of every field, so a recycled record
// can never leak a prior payload or path into its next flight. (Pointer
// identity is checked over several rounds because sync.Pool deliberately
// drops a fraction of Puts under the race detector.)
func TestPoolRecycleClearsRecord(t *testing.T) {
	s, n, addrs := poolNet(t, 1, Config{})
	defer s.Close()
	recycled := 0
	for i := 0; i < 64; i++ {
		pkt := n.allocPacket(0)
		pkt.src, pkt.dst = addrs[0], addrs[1]
		pkt.payload = []byte("secret")
		pkt.path = []topology.LinkID{1, 2, 3}
		n.releasePacket(0, pkt)
		var zero overlay.Address
		if pkt.payload != nil || pkt.path != nil || pkt.src != zero || pkt.dst != zero {
			t.Fatalf("released record kept state: %+v", pkt)
		}
		if n.allocPacket(0) == pkt {
			recycled++
		}
	}
	if recycled == 0 {
		t.Fatal("same-generation releases never recycled a record")
	}
}

// TestPoolSnapshotPinsGeneration checks checkpoint safety: a packet created
// before a snapshot may be referenced by the snapshot's copied event heaps,
// so releasing it must NOT return it to the pool — only records born after
// the latest snapshot recycle.
func TestPoolSnapshotPinsGeneration(t *testing.T) {
	s, n, _ := poolNet(t, 1, Config{})
	defer s.Close()
	old := n.allocPacket(0)
	_ = n.Snapshot() // retires old's generation
	n.releasePacket(0, old)
	for i := 0; i < 64; i++ {
		if n.allocPacket(0) == old {
			t.Fatalf("snapshot-pinned packet was recycled; a restored heap would replay corrupted state")
		}
	}
	recycled := 0
	for i := 0; i < 64; i++ {
		fresh := n.allocPacket(0)
		n.releasePacket(0, fresh)
		if n.allocPacket(0) == fresh {
			recycled++
		}
	}
	if recycled == 0 {
		t.Fatal("post-snapshot packets never recycle")
	}
}

// TestPoolPayloadIntegrity drives distinct tagged payloads through the
// pooled hot path (including drops, which release records early) and checks
// every delivery carries exactly the bytes its send put in. A pooling bug
// that recycled a record still referenced by a pending arrival — or failed
// to clear one — would corrupt or cross-wire payloads here.
func TestPoolPayloadIntegrity(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s, n, addrs := poolNet(t, shards, Config{LossRate: 0.02})
		// Delivery callbacks run on the receiving node's shard; the shared
		// map needs a lock (sim determinism is unaffected — the lock guards
		// test accounting, not simulation state).
		var mu sync.Mutex
		got := make(map[uint64][]byte)
		for _, a := range addrs {
			ep, _ := n.Endpoint(a)
			ep.SetRecv(func(_ overlay.Address, payload []byte) {
				tag := binary.BigEndian.Uint64(payload)
				cp := append([]byte(nil), payload...)
				mu.Lock()
				got[tag] = cp
				mu.Unlock()
			})
		}
		rng := s.Rand()
		sent := make(map[uint64][]byte)
		for i := 0; i < 600; i++ {
			payload := make([]byte, 16+rng.Intn(400))
			binary.BigEndian.PutUint64(payload, uint64(i))
			rng.Read(payload[8:])
			sent[uint64(i)] = append([]byte(nil), payload...)
			src, _ := n.Endpoint(addrs[rng.Intn(len(addrs))])
			_ = src.Send(addrs[rng.Intn(len(addrs))], payload)
			s.RunFor(500 * time.Microsecond)
		}
		s.RunFor(time.Second)
		s.Close()
		if len(got) < 400 {
			t.Fatalf("shards=%d: degenerate run, only %d/600 delivered", shards, len(got))
		}
		for tag, payload := range got {
			want, ok := sent[tag]
			if !ok {
				t.Fatalf("shards=%d: delivery with unknown tag %d", shards, tag)
			}
			if string(payload) != string(want) {
				t.Fatalf("shards=%d: payload for op %d corrupted in flight", shards, tag)
			}
		}
	}
}

// TestPoolSnapshotRewindStats takes a checkpoint mid-storm — packet records
// in flight, pools warm — runs the tail twice, and requires identical
// counters and clocks both times. A record recycled while a snapshot heap
// still referenced it would make the replayed branch diverge.
func TestPoolSnapshotRewindStats(t *testing.T) {
	for _, shards := range []int{1, 3} {
		s, n, addrs := poolNet(t, shards, Config{LossRate: 0.01})
		for _, a := range addrs {
			ep, _ := n.Endpoint(a)
			ep.SetRecv(func(overlay.Address, []byte) {})
		}
		rng := s.Rand()
		send := func(count int) {
			for i := 0; i < count; i++ {
				src, _ := n.Endpoint(addrs[rng.Intn(len(addrs))])
				_ = src.Send(addrs[rng.Intn(len(addrs))], make([]byte, 64+rng.Intn(512)))
				s.RunFor(300 * time.Microsecond)
			}
		}
		send(200) // shared prefix, leaves packets mid-flight
		schedCp, netCp := s.Snapshot(), n.Snapshot()

		s.RunFor(400 * time.Millisecond)
		first, firstAt := n.Stats(), s.Elapsed()

		s.Restore(schedCp) // also rewinds the scheduler PRNG
		n.Restore(netCp)
		s.RunFor(400 * time.Millisecond)
		second, secondAt := n.Stats(), s.Elapsed()
		s.Close()

		if first != second || firstAt != secondAt {
			t.Fatalf("shards=%d: rewound branch diverged:\n  first:  %+v at %v\n  second: %+v at %v",
				shards, first, firstAt, second, secondAt)
		}
		if first.Delivered == 0 {
			t.Fatalf("shards=%d: degenerate run: %+v", shards, first)
		}
	}
}
