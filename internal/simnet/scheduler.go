// Package simnet is the discrete-event network emulator that stands in for
// ModelNet: it subjects every packet to hop-by-hop bandwidth serialization,
// propagation delay, and drop-tail queuing over a routed topology, while
// running in virtual time on one machine. Experiments that took the paper
// 20–50 cluster machines replay deterministically in-process.
package simnet

import (
	"container/heap"
	"math/rand"
	"time"

	"macedon/internal/substrate"
)

// Scheduler is a deterministic virtual-time event loop. Events scheduled for
// the same instant fire in scheduling order. It implements substrate.Clock.
type Scheduler struct {
	now  time.Duration // virtual time since epoch
	seq  uint64
	evts eventHeap
	rng  *rand.Rand

	executed uint64
}

// epoch anchors virtual time so traces show sensible absolute timestamps.
var epoch = time.Date(2004, time.March, 29, 0, 0, 0, 0, time.UTC) // NSDI '04

// NewScheduler returns a scheduler seeded for reproducibility.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return epoch.Add(s.now) }

// Elapsed returns virtual time since the simulation epoch.
func (s *Scheduler) Elapsed() time.Duration { return s.now }

// Rand returns the simulation's seeded PRNG. All randomness in an experiment
// must come from here (or from PRNGs it seeds) for runs to reproduce.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events run so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of events waiting, cancelled ones included.
func (s *Scheduler) Pending() int { return s.evts.Len() }

// simTimer implements substrate.Timer by lazy cancellation.
type simTimer struct {
	fired   bool
	stopped bool
}

// Stop cancels the timer if still pending.
func (t *simTimer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	tm  *simTimer // nil for internal events that are never cancelled
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// After schedules fn to run once after d of virtual time. A non-positive d
// runs fn at the current instant, after already-queued events for that
// instant. The returned timer cancels it.
func (s *Scheduler) After(d time.Duration, fn func()) substrate.Timer {
	if d < 0 {
		d = 0
	}
	t := &simTimer{}
	s.seq++
	heap.Push(&s.evts, event{at: s.now + d, seq: s.seq, fn: fn, tm: t})
	return t
}

// post schedules an internal (non-cancellable) event.
func (s *Scheduler) post(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.evts, event{at: s.now + d, seq: s.seq, fn: fn})
}

// Step runs the next event, if any, and reports whether one ran.
func (s *Scheduler) Step() bool {
	for s.evts.Len() > 0 {
		e := heap.Pop(&s.evts).(event)
		if e.tm != nil {
			if e.tm.stopped {
				continue
			}
			e.tm.fired = true
		}
		if e.at > s.now {
			s.now = e.at
		}
		s.executed++
		e.fn()
		return true
	}
	return false
}

// RunFor advances virtual time by d, executing every event due in that
// window, and leaves the clock exactly d later even if the queue drains.
func (s *Scheduler) RunFor(d time.Duration) {
	deadline := s.now + d
	for s.evts.Len() > 0 && s.evts[0].at <= deadline {
		if !s.Step() {
			break
		}
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunUntilIdle executes events until none remain. Protocols with periodic
// timers never go idle; prefer RunFor for those.
func (s *Scheduler) RunUntilIdle() {
	for s.Step() {
	}
}
