// Package simnet is the discrete-event network emulator that stands in for
// ModelNet: it subjects every packet to hop-by-hop bandwidth serialization,
// propagation delay, and drop-tail queuing over a routed topology, while
// running in virtual time on one machine. Experiments that took the paper
// 20–50 cluster machines replay deterministically in-process.
//
// The event loop is sharded: endpoints and links are partitioned across N
// shards that each run their own event queue in virtual time, synchronized
// by a conservative lookahead barrier derived from the minimum cross-shard
// link latency. Execution order is defined by a deterministic key that is
// independent of the shard count, so a run with -shards=4 produces a trace
// byte-identical to the single-threaded run (see docs/simnet.md).
package simnet

import (
	"math/rand"
	"sync"
	"time"

	"macedon/internal/substrate"
	"macedon/internal/topology"
)

// Scheduler is a deterministic virtual-time event loop, optionally sharded.
// Events scheduled for the same instant fire in a deterministic order that
// does not depend on the shard count: each event carries an (actor, seq)
// key assigned by its logical owner (an endpoint, a link, or the global
// scheduling context), and ties on the timestamp break by that key. It
// implements substrate.Clock.
type Scheduler struct {
	seed int64
	now  time.Duration // global virtual time since epoch
	rng  *rand.Rand

	// net is the emulated network whose flat event records this scheduler
	// dispatches (simnet.New installs it). Exactly one network may drive a
	// scheduler: flat events carry link and packet references that only
	// resolve against it.
	net *Network

	shards    []*shard
	lookahead time.Duration // conservative cross-shard window; 0 = not set

	globalSeq uint64    // seq counter of the global actor (actor 0)
	global    eventHeap // global-actor events, executed at barriers

	executed uint64 // events run by the coordinator (barriers, Step)

	// stall accumulates barrier-stall time: for every global-actor event
	// instant, the gap between the engine frontier (the latest executed
	// shard event, or the last barrier) and the barrier instant. lastSync
	// is the last barrier instant noted, so one instant accrues once no
	// matter how many global events share it. Both are coordinator-only.
	stall    time.Duration
	lastSync time.Duration

	workers sync.Once
	closed  sync.Once
	started bool
}

// epoch anchors virtual time so traces show sensible absolute timestamps.
var epoch = time.Date(2004, time.March, 29, 0, 0, 0, 0, time.UTC) // NSDI '04

// actorGlobal keys events scheduled through the public After/post API: test
// drivers, the scenario engine, and everything else outside the emulated
// network. Global events execute at epoch barriers when the loop is sharded.
const actorGlobal uint64 = 0

// NewScheduler returns a single-shard scheduler seeded for reproducibility:
// today's sequential behavior.
func NewScheduler(seed int64) *Scheduler { return NewSharded(seed, 1) }

// NewSharded returns a scheduler with n event shards. n <= 1 selects the
// sequential loop. The shard count never changes results — only wall-clock
// time — provided the network installs its lookahead (simnet.New does).
func NewSharded(seed int64, n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{seed: seed, rng: rand.New(rand.NewSource(seed))}
	s.shards = make([]*shard, n)
	for i := range s.shards {
		s.shards[i] = &shard{id: i, sched: s}
	}
	return s
}

// Shards returns the number of event shards.
func (s *Scheduler) Shards() int { return len(s.shards) }

// SetLookahead installs the conservative synchronization window: the minimum
// virtual-time distance any cross-shard interaction travels. The network
// derives it from the smallest cross-shard link latency. Sharded execution
// without a positive lookahead falls back to sequential stepping.
func (s *Scheduler) SetLookahead(d time.Duration) { s.lookahead = d }

// Lookahead returns the installed synchronization window.
func (s *Scheduler) Lookahead() time.Duration { return s.lookahead }

// Seed returns the seed the scheduler was built with.
func (s *Scheduler) Seed() int64 { return s.seed }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return epoch.Add(s.now) }

// Elapsed returns virtual time since the simulation epoch.
func (s *Scheduler) Elapsed() time.Duration { return s.now }

// Rand returns the simulation's seeded PRNG. All randomness in an experiment
// must come from here (or from PRNGs it seeds) for runs to reproduce. It
// must only be used from the coordinating goroutine (setup code and event
// drivers), never from per-shard event handlers.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events run so far.
func (s *Scheduler) Executed() uint64 {
	n := s.executed
	for _, sh := range s.shards {
		n += sh.executedCount()
	}
	return n
}

// BarrierStall returns the accumulated barrier-stall time: virtual time
// between the engine frontier and each global-actor event instant. In a
// sharded run this is exactly the window the barrier protocol forces the
// coordinator to drain single-threaded; the sequential loop accrues the
// identical quantity per global-actor pop, so the total is shard-invariant.
func (s *Scheduler) BarrierStall() time.Duration { return s.stall }

// noteBarrier accrues stall for a global-actor event instant t. prev is
// the engine frontier: the latest shard clock (the last executed shard
// event, or the pinned time from the previous window) or the last noted
// barrier, whichever is later. Cancelled global timers still note their
// instant — a sharded run drains a barrier for them regardless.
func (s *Scheduler) noteBarrier(t time.Duration) {
	prev := s.lastSync
	for _, sh := range s.shards {
		if sh.now > prev {
			prev = sh.now
		}
	}
	if t > prev {
		s.stall += t - prev
	}
	s.lastSync = t
}

// Pending returns the number of events waiting, cancelled ones included.
func (s *Scheduler) Pending() int {
	n := s.global.Len()
	for _, sh := range s.shards {
		n += sh.pendingCount()
	}
	return n
}

// simTimer implements substrate.Timer by lazy cancellation. A timer is only
// touched by contexts owned by its shard (or by the coordinator between
// epochs), so no locking is needed.
type simTimer struct {
	fired   bool
	stopped bool
}

// Stop cancels the timer if still pending.
func (t *simTimer) Stop() bool {
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// Event kinds. The zero value is evFunc, so every event built from a plain
// closure (timers, global control ops) dispatches unchanged. The network
// kinds are flat records: the packet hot path schedules them without
// allocating a closure per event (see network.go).
const (
	evFunc    uint8 = iota // run fn (timers, scenario control, test drivers)
	evRelease              // a pipe finished serializing: release queued bytes
	evArrive               // a packet advances to its next hop's vertex
	evDeliver              // loopback delivery at the destination endpoint
)

// event is one scheduled callback or flat network record. (at, actor, seq)
// is the deterministic total order: actor identifies the logical scheduling
// context (0 = global, 1+vertex for endpoints, 1+numVertices+link for pipes)
// and seq is that actor's private counter. Because every actor schedules
// from exactly one shard, the key assignment — and therefore the execution
// order — is independent of how many shards run.
//
// Network events carry their operands inline instead of in a closure: kind
// selects the operation and (pkt, link, arg, shard) parameterize it. This is
// the zero-alloc hot path — a closure per packet hop used to be the
// dominant allocation of a large run.
type event struct {
	at    time.Duration
	actor uint64
	seq   uint64
	fn    func()          // evFunc only
	tm    *simTimer       // nil for internal events that are never cancelled
	pkt   *packet         // evArrive, evDeliver
	link  topology.LinkID // evRelease: the pipe whose queue drains
	arg   int32           // evRelease: bytes to release; evArrive: next hop index
	shard int32           // evArrive, evDeliver: the shard the event executes on
	kind  uint8
}

// exec dispatches one event against the network owning the flat records.
func (e *event) exec(n *Network) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evRelease:
		n.links[e.link].queuedBytes -= int(e.arg)
	case evArrive:
		n.arriveHop(int(e.shard), e.pkt, int(e.arg))
	case evDeliver:
		n.deliverLoopback(int(e.shard), e.pkt)
	}
}

func keyLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.actor != b.actor {
		return a.actor < b.actor
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap ordered by keyLess, implemented directly
// on the slice. The generic container/heap would box every event into an
// interface{} on Push — one heap allocation per scheduled event, which at
// scale dominates the allocation profile. keyLess is a strict total order
// ((actor, seq) pairs are unique), so the pop sequence — and therefore
// every trace — is independent of the heap's internal arrangement.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !keyLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = event{} // release closure and packet references
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && keyLess(s[r], s[l]) {
			m = r
		}
		if !keyLess(s[m], s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// shard is one partition of the event loop: a locked heap plus the shard's
// own virtual clock. Cross-shard scheduling pushes into the target heap
// under its mutex; the conservative lookahead guarantees such events land at
// or beyond the running epoch's horizon, so the owner never misses one.
type shard struct {
	id    int
	sched *Scheduler

	mu   sync.Mutex
	evts eventHeap

	now      time.Duration // local virtual time (== last executed event)
	executed uint64

	run  chan window
	done chan struct{}
}

type window struct {
	limit     time.Duration
	inclusive bool
}

func (sh *shard) push(e event) {
	sh.mu.Lock()
	sh.evts.push(e)
	sh.mu.Unlock()
}

func (sh *shard) pendingCount() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.evts.Len()
}

// executedCount is coordinator-only: workers are parked whenever it runs,
// and the epoch channels provide the happens-before edge.
func (sh *shard) executedCount() uint64 { return sh.executed }

// min returns the shard's earliest pending event key.
func (sh *shard) min() (event, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.evts.Len() == 0 {
		return event{}, false
	}
	return sh.evts[0], true
}

// popTop removes exactly the earliest event. run is false when it was a
// cancelled timer (still returned, so callers can observe its key); any is
// false when the heap was empty.
func (sh *shard) popTop() (e event, run, any bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.evts.Len() == 0 {
		return event{}, false, false
	}
	e = sh.evts.pop()
	if e.tm != nil {
		if e.tm.stopped {
			return e, false, true
		}
		e.tm.fired = true
	}
	return e, true, true
}

// popIf removes and returns the earliest event when it is due within the
// window, resolving lazily-cancelled timers inline.
func (sh *shard) popIf(w window) (event, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.evts.Len() > 0 {
		e := sh.evts[0]
		if e.at > w.limit || (e.at == w.limit && !w.inclusive) {
			return event{}, false
		}
		sh.evts.pop()
		if e.tm != nil {
			if e.tm.stopped {
				continue
			}
			e.tm.fired = true
		}
		return e, true
	}
	return event{}, false
}

// runWindow executes every due event of one window in key order. sh.now
// and sh.executed are only touched from the goroutine driving the shard's
// window (a worker, or the coordinator when it inlines a lone busy shard);
// the epoch channels order all cross-goroutine accesses.
func (sh *shard) runWindow(w window) {
	for {
		e, ok := sh.popIf(w)
		if !ok {
			return
		}
		if e.at > sh.now {
			sh.now = e.at
		}
		sh.executed++
		e.exec(sh.sched.net)
	}
}

// serve is the worker loop.
func (sh *shard) serve() {
	for w := range sh.run {
		sh.runWindow(w)
		sh.done <- struct{}{}
	}
}

// schedule enqueues fn on a shard at absolute virtual time at with the given
// deterministic key. Callers own the (actor, seq) counters.
func (s *Scheduler) schedule(shardID int, at time.Duration, actor, seq uint64, fn func(), tm *simTimer) {
	s.shards[shardID].push(event{at: at, actor: actor, seq: seq, fn: fn, tm: tm})
}

// scheduleEv enqueues a prepared flat event record on a shard. The caller
// fills the kind-specific operands; scheduleEv stamps the deterministic key.
func (s *Scheduler) scheduleEv(shardID int, at time.Duration, actor, seq uint64, e event) {
	e.at, e.actor, e.seq = at, actor, seq
	s.shards[shardID].push(e)
}

// timeOn returns the current virtual time as seen from a shard: the later
// of the shard's own clock (current while its events execute) and the
// global clock (current from the coordinator between epochs). Both reads
// are safe from either context — the epoch barrier orders all writes.
func (s *Scheduler) timeOn(shardID int) time.Duration {
	if sh := s.shards[shardID]; sh.now > s.now {
		return sh.now
	}
	return s.now
}

// After schedules fn to run once after d of virtual time. A non-positive d
// runs fn at the current instant, after already-queued global events for
// that instant. The returned timer cancels it.
//
// After uses the global actor: in a sharded run such events execute at
// epoch barriers with every shard synchronized at exactly that instant, so
// they may touch cross-shard state (the scenario engine's control events
// rely on this). After must be called from the coordinating goroutine, not
// from event handlers; emulated nodes schedule through their NodeSubstrate
// clock instead.
func (s *Scheduler) After(d time.Duration, fn func()) substrate.Timer {
	if d < 0 {
		d = 0
	}
	t := &simTimer{}
	s.globalSeq++
	e := event{at: s.now + d, actor: actorGlobal, seq: s.globalSeq, fn: fn, tm: t}
	if len(s.shards) == 1 {
		s.shards[0].push(e)
	} else {
		s.global.push(e)
	}
	return t
}

// post schedules an internal (non-cancellable) global event.
func (s *Scheduler) post(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.globalSeq++
	e := event{at: s.now + d, actor: actorGlobal, seq: s.globalSeq, fn: fn}
	if len(s.shards) == 1 {
		s.shards[0].push(e)
	} else {
		s.global.push(e)
	}
}

// minQueue finds the queue holding the earliest pending event: src is nil
// for the global heap, otherwise the shard.
func (s *Scheduler) minQueue() (best event, src *shard, ok bool) {
	if s.global.Len() > 0 {
		best, ok = s.global[0], true
	}
	for _, sh := range s.shards {
		if e, has := sh.min(); has && (!ok || keyLess(e, best)) {
			best, src, ok = e, sh, true
		}
	}
	return best, src, ok
}

// minKey returns the earliest pending event key across every queue.
func (s *Scheduler) minKey() (event, bool) {
	e, _, ok := s.minQueue()
	return e, ok
}

// Step runs the next event in deterministic order, if any, and reports
// whether one ran. Stepping is always sequential and always valid: sharded
// execution produces exactly the order Step walks.
func (s *Scheduler) Step() bool {
	for {
		_, src, ok := s.minQueue()
		if !ok {
			return false
		}
		var e event
		if src == nil {
			e = s.global.pop()
			s.noteBarrier(e.at)
			if e.tm != nil {
				if e.tm.stopped {
					continue
				}
				e.tm.fired = true
			}
		} else {
			got, run, any := src.popTop()
			if any && got.actor == actorGlobal {
				s.noteBarrier(got.at)
			}
			if !run {
				continue
			}
			e = got
			if e.at > src.now {
				src.now = e.at
			}
		}
		if e.at > s.now {
			s.now = e.at
		}
		s.executed++
		e.exec(s.net)
		return true
	}
}

// RunFor advances virtual time by d, executing every event due in that
// window, and leaves the clock exactly d later even if the queue drains.
func (s *Scheduler) RunFor(d time.Duration) {
	deadline := s.now + d
	if len(s.shards) == 1 || s.lookahead <= 0 {
		s.runSequential(deadline)
	} else {
		s.runSharded(deadline)
	}
	s.now = deadline
	for _, sh := range s.shards {
		sh.now = deadline
	}
}

// runSequential executes events through deadline on the caller goroutine.
func (s *Scheduler) runSequential(deadline time.Duration) {
	for {
		e, ok := s.minKey()
		if !ok || e.at > deadline {
			return
		}
		s.Step()
	}
}

// runSharded is the epoch loop: shards execute their queues in parallel up
// to a horizon no interaction can cross (the lookahead), and global events
// run single-threaded at barriers where every shard sits at exactly the
// same instant. Determinism holds because events execute in (at, actor,
// seq) order within each shard and cross-shard effects always land at or
// beyond the horizon.
func (s *Scheduler) runSharded(deadline time.Duration) {
	s.workers.Do(func() {
		s.started = true
		for _, sh := range s.shards {
			sh.run = make(chan window)
			sh.done = make(chan struct{})
			go sh.serve()
		}
	})
	for {
		e, ok := s.minKey()
		if !ok || e.at > deadline {
			return
		}
		start := e.at
		if start < s.now {
			start = s.now
		}
		horizon := start + s.lookahead
		var tg time.Duration = -1
		if s.global.Len() > 0 {
			tg = s.global[0].at
		}
		switch {
		case tg >= 0 && tg <= deadline && tg <= horizon:
			// A global event is within reach: run everything strictly
			// before it in parallel, then drain the barrier instant.
			if tg > start {
				s.parallel(window{limit: tg})
			}
			s.drainBarrier(tg)
			s.now = tg
		case horizon > deadline:
			// Final stretch: nothing global remains in the window and no
			// cross-shard effect of it can land inside it.
			s.parallel(window{limit: deadline, inclusive: true})
			s.now = deadline
		default:
			s.parallel(window{limit: horizon})
			s.now = horizon
		}
	}
}

// parallel fans one window out to the shard workers and waits for all.
// Shards with nothing due inside the window are skipped entirely: nothing
// can add sub-horizon work to an idle shard mid-epoch (cross-shard pushes
// land at or beyond the horizon, and a shard only feeds itself while its
// own events execute), so skipping is free and saves two channel hops per
// idle shard per epoch.
func (s *Scheduler) parallel(w window) {
	var active [64]*shard
	n := 0
	for _, sh := range s.shards {
		if e, ok := sh.min(); ok && (e.at < w.limit || (w.inclusive && e.at == w.limit)) {
			if n < len(active) {
				active[n] = sh
				n++
			} else {
				// More shards than the stack buffer: dispatch eagerly.
				sh.run <- w
				defer func(sh *shard) { <-sh.done }(sh)
			}
		}
	}
	if n == 1 {
		// One busy shard: run its window on the coordinator goroutine and
		// skip the channel round trip entirely.
		active[0].runWindow(w)
		return
	}
	for i := 0; i < n; i++ {
		active[i].run <- w
	}
	for i := 0; i < n; i++ {
		<-active[i].done
	}
}

// drainBarrier executes every event scheduled at exactly instant t — global
// and per-shard — single-threaded in deterministic key order, including
// events spawned during the drain at the same instant. All shard clocks are
// pinned to t so barrier code observes one consistent time.
func (s *Scheduler) drainBarrier(t time.Duration) {
	s.noteBarrier(t) // before pinning: prev is the true engine frontier
	s.now = t
	for _, sh := range s.shards {
		sh.now = t
	}
	for {
		best, src, ok := s.minQueue()
		if !ok || best.at != t {
			return
		}
		if src == nil {
			e := s.global.pop()
			if e.tm != nil {
				if e.tm.stopped {
					continue
				}
				e.tm.fired = true
			}
			s.executed++
			e.exec(s.net)
			continue
		}
		e, run, _ := src.popTop()
		if !run {
			continue
		}
		s.executed++
		e.exec(s.net)
	}
}

// RunUntilIdle executes events until none remain. Protocols with periodic
// timers never go idle; prefer RunFor for those. RunUntilIdle steps
// sequentially regardless of the shard count.
func (s *Scheduler) RunUntilIdle() {
	for s.Step() {
	}
}

// Close releases the shard worker goroutines. The scheduler must not run
// afterwards. Harmless to call more than once, or on a scheduler that
// never went parallel; callers that create many sharded schedulers in one
// process (benchmarks, the golden corpus) would otherwise leak one parked
// goroutine per shard per run.
func (s *Scheduler) Close() {
	s.closed.Do(func() {
		if !s.started {
			return
		}
		for _, sh := range s.shards {
			close(sh.run)
		}
	})
}
