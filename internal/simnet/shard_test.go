package simnet

import (
	"fmt"
	"testing"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/topology"
)

// stormRun drives a deterministic datagram storm over an INET topology and
// returns the final counters. Everything (workload, loss, queuing) is a
// pure function of the seed, so any two runs — at any shard counts — must
// agree exactly.
func stormRun(t *testing.T, shards int) (Stats, time.Duration) {
	t.Helper()
	g, err := topology.INET(topology.DefaultINET(60, 3))
	if err != nil {
		t.Fatal(err)
	}
	addrs := topology.AttachClients(g, 12, 1, topology.DefaultAccess, 3)
	s := NewSharded(11, shards)
	n := New(s, g, Config{LossRate: 0.01})
	for _, a := range addrs {
		ep, _ := n.Endpoint(a)
		ep.SetRecv(func(overlay.Address, []byte) {})
	}
	rng := s.Rand()
	for i := 0; i < 400; i++ {
		src, _ := n.Endpoint(addrs[rng.Intn(len(addrs))])
		dst := addrs[rng.Intn(len(addrs))]
		_ = src.Send(dst, make([]byte, 100+rng.Intn(1000)))
		s.RunFor(time.Millisecond)
	}
	s.RunFor(500 * time.Millisecond)
	s.Close()
	return n.Stats(), s.Elapsed()
}

// TestShardInvarianceRawTraffic checks the tentpole guarantee at the packet
// level: per-hop serialization, queuing, and the loss process produce the
// same counters whether the loop runs on 1, 2, 3, or 4 shards.
func TestShardInvarianceRawTraffic(t *testing.T) {
	base, elapsed := stormRun(t, 1)
	if base.Sent == 0 || base.Delivered == 0 || base.RandomLoss == 0 {
		t.Fatalf("degenerate baseline: %+v", base)
	}
	for _, shards := range []int{2, 3, 4} {
		got, e := stormRun(t, shards)
		if got != base || e != elapsed {
			t.Fatalf("shards=%d diverged:\n  1: %+v elapsed=%v\n  %d: %+v elapsed=%v",
				shards, base, elapsed, shards, got, e)
		}
	}
}

// TestShardInvarianceNodeTimers checks shard-bound clocks: each endpoint's
// timers fire at identical virtual instants in identical per-endpoint order
// for every shard count. (Only per-endpoint order is observable — events on
// different shards at one instant are concurrent by design and may not
// touch shared state, which is why each endpoint records into its own row.)
func TestShardInvarianceNodeTimers(t *testing.T) {
	const clients = 6
	run := func(shards int) [][]string {
		g := topology.NewGraph()
		r := g.AddRouter()
		r2 := g.AddRouter()
		g.AddLink(r, r2, 2*time.Millisecond, 1_000_000, 10*1500)
		for i := 1; i <= clients; i++ {
			at := r
			if i%2 == 0 {
				at = r2
			}
			g.AttachClient(overlay.Address(i), at, topology.DefaultAccess)
		}
		s := NewSharded(5, shards)
		n := New(s, g, Config{})
		rows := make([][]string, clients)
		for i := 1; i <= clients; i++ {
			ns, err := n.NodeNet(overlay.Address(i))
			if err != nil {
				t.Fatal(err)
			}
			row := &rows[i-1]
			// Same-instant ties between the two timers below must keep
			// their scheduling order on every shard count.
			for k := 0; k < 3; k++ {
				k := k
				ns.After(time.Duration(k+1)*5*time.Millisecond, func() {
					*row = append(*row, fmt.Sprintf("a%d@%v", k, ns.Elapsed()))
				})
				ns.After(time.Duration(k+1)*5*time.Millisecond, func() {
					*row = append(*row, fmt.Sprintf("b%d@%v", k, ns.Elapsed()))
				})
			}
		}
		s.RunFor(50 * time.Millisecond)
		s.Close()
		return rows
	}
	base := run(1)
	for i, row := range base {
		if len(row) != 6 {
			t.Fatalf("endpoint %d fired %d times, want 6: %v", i+1, len(row), row)
		}
	}
	for _, shards := range []int{2, 4} {
		got := run(shards)
		for i := range base {
			if fmt.Sprint(got[i]) != fmt.Sprint(base[i]) {
				t.Fatalf("shards=%d endpoint %d: %v, want %v", shards, i+1, got[i], base[i])
			}
		}
	}
}

// TestOracleCacheEviction is the Routes-memory satellite: cycling through
// more distinct link-failure sets than the cache bound must evict old
// oracles instead of accumulating them.
func TestOracleCacheEviction(t *testing.T) {
	g, err := topology.INET(topology.DefaultINET(40, 9))
	if err != nil {
		t.Fatal(err)
	}
	addrs := topology.AttachClients(g, 8, 1, topology.DefaultAccess, 9)
	s := NewScheduler(1)
	n := New(s, g, Config{OracleCacheSize: 3})
	for _, a := range addrs {
		ep, _ := n.Endpoint(a)
		ep.SetRecv(func(overlay.Address, []byte) {})
	}
	// Fail each client's access pipe in turn: every iteration is a distinct
	// failure set (the previous link is restored first).
	var prev topology.LinkID = topology.NilLink
	for i, a := range addrs {
		up, _, ok := g.AccessLinks(a)
		if !ok {
			t.Fatalf("no access link for %v", a)
		}
		if prev != topology.NilLink {
			n.SetLinkDown(prev, false)
		}
		n.SetLinkDown(up, true)
		prev = up
		// Exercise routing under the failure so trees actually build.
		src, _ := n.Endpoint(addrs[(i+1)%len(addrs)])
		_ = src.Send(addrs[(i+2)%len(addrs)], []byte("x"))
		s.RunFor(50 * time.Millisecond)
		if got := n.OracleCacheLen(); got > 3 {
			t.Fatalf("oracle cache grew to %d, bound is 3", got)
		}
	}
	if n.OracleEvictions() == 0 {
		t.Fatal("no oracle evictions after 8 distinct failure sets with bound 3")
	}
	// A revisited failure set must hit the cache (front entry, no eviction).
	evBefore := n.OracleEvictions()
	n.SetLinkDown(prev, false)
	n.SetLinkDown(prev, true)
	if n.OracleEvictions() != evBefore {
		t.Fatal("revisiting the most recent failure set evicted an oracle")
	}
}

// TestOracleTreeBudget checks the per-oracle tree bound: more destinations
// than the budget must not grow the cache past it, and answers must stay
// correct after eviction.
func TestOracleTreeBudget(t *testing.T) {
	g, err := topology.INET(topology.DefaultINET(40, 4))
	if err != nil {
		t.Fatal(err)
	}
	addrs := topology.AttachClients(g, 10, 1, topology.DefaultAccess, 4)
	bounded := topology.NewRoutes(g)
	bounded.SetTreeBudget(3)
	reference := topology.NewRoutes(g)
	for round := 0; round < 2; round++ {
		for _, a := range addrs {
			for _, b := range addrs {
				if a == b {
					continue
				}
				got, err1 := bounded.ClientLatency(a, b)
				want, err2 := reference.ClientLatency(a, b)
				if err1 != nil || err2 != nil {
					t.Fatalf("latency errors: %v / %v", err1, err2)
				}
				if got != want {
					t.Fatalf("bounded oracle disagrees for %v->%v: %v vs %v", a, b, got, want)
				}
			}
		}
		if got := bounded.CachedTrees(); got > 3 {
			t.Fatalf("tree cache grew to %d, budget is 3", got)
		}
	}
}
