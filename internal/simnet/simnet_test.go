package simnet

import (
	"testing"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/topology"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var order []int
	s.After(2*time.Millisecond, func() { order = append(order, 2) })
	s.After(time.Millisecond, func() { order = append(order, 1) })
	s.After(2*time.Millisecond, func() { order = append(order, 3) }) // same time: FIFO
	s.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Elapsed() != 2*time.Millisecond {
		t.Fatalf("elapsed = %v", s.Elapsed())
	}
}

func TestSchedulerTimerStop(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should succeed")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report already stopped")
	}
	s.RunUntilIdle()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	var rearm func()
	rearm = func() {
		fired = append(fired, s.Elapsed())
		s.After(10*time.Millisecond, rearm)
	}
	s.After(10*time.Millisecond, rearm)
	s.RunFor(35 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("fired %d times: %v", len(fired), fired)
	}
	if s.Elapsed() != 35*time.Millisecond {
		t.Fatalf("clock = %v, want 35ms", s.Elapsed())
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	hits := 0
	s.After(0, func() {
		s.After(0, func() { hits++ })
		hits++
	})
	s.RunUntilIdle()
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
}

// twoNodeNet wires two clients across a single router.
func twoNodeNet(t *testing.T, access topology.AccessLink, cfg Config) (*Network, *Scheduler) {
	t.Helper()
	g := topology.NewGraph()
	r := g.AddRouter()
	r2 := g.AddRouter()
	g.AddLink(r, r2, 5*time.Millisecond, 1_000_000, 10*1500)
	g.AttachClient(1, r, access)
	g.AttachClient(2, r2, access)
	s := NewScheduler(7)
	return New(s, g, cfg), s
}

func TestDeliveryLatency(t *testing.T) {
	access := topology.AccessLink{Latency: time.Millisecond, Bandwidth: 10_000_000, QueueBytes: 64 << 10}
	n, s := twoNodeNet(t, access, Config{})
	e1, err := n.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := n.Endpoint(2)
	var got []byte
	var at time.Duration
	e2.SetRecv(func(src overlay.Address, p []byte) {
		if src != 1 {
			t.Errorf("src = %v", src)
		}
		got = append([]byte(nil), p...)
		at = s.Elapsed()
	})
	payload := make([]byte, 972) // 1000 bytes with header overhead
	if err := e1.Send(2, payload); err != nil {
		t.Fatal(err)
	}
	s.RunUntilIdle()
	if got == nil {
		t.Fatal("not delivered")
	}
	// Propagation: 1 + 5 + 1 = 7ms. Serialization: 1000B over 10Mbps = 0.8ms,
	// over 1Mbps = 8ms, over 10Mbps = 0.8ms => total 16.6ms.
	want := 7*time.Millisecond + 800*time.Microsecond + 8*time.Millisecond + 800*time.Microsecond
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	// Middle link: 1 Mbps with a 10-packet queue. Blast 100 packets at once.
	n, s := twoNodeNet(t, topology.DefaultAccess, Config{})
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	delivered := 0
	e2.SetRecv(func(overlay.Address, []byte) { delivered++ })
	for i := 0; i < 100; i++ {
		if err := e1.Send(2, make([]byte, 1400)); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntilIdle()
	st := n.Stats()
	if st.QueueDrops == 0 {
		t.Fatal("expected queue drops")
	}
	if delivered == 0 {
		t.Fatal("expected some deliveries")
	}
	if delivered+int(st.QueueDrops) != 100 {
		t.Fatalf("delivered %d + drops %d != 100", delivered, st.QueueDrops)
	}
}

func TestBandwidthCeiling(t *testing.T) {
	// Sustained send above the bottleneck rate must deliver at ~the
	// bottleneck rate (1 Mbps middle link).
	n, s := twoNodeNet(t, topology.DefaultAccess, Config{})
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	var deliveredBytes int
	e2.SetRecv(func(_ overlay.Address, p []byte) { deliveredBytes += len(p) })
	// Send 1400B every 5ms = 2.24 Mbps offered for 10s of virtual time.
	var tick func()
	stop := false
	tick = func() {
		if stop {
			return
		}
		_ = e1.Send(2, make([]byte, 1400))
		s.After(5*time.Millisecond, tick)
	}
	s.After(0, tick)
	s.RunFor(10 * time.Second)
	stop = true
	s.RunUntilIdle()
	rate := float64(deliveredBytes) * 8 / 10 // bits per second over 10s
	if rate > 1_050_000 {
		t.Fatalf("delivered %.0f bps, above 1 Mbps bottleneck", rate)
	}
	if rate < 700_000 {
		t.Fatalf("delivered %.0f bps, far below bottleneck", rate)
	}
}

func TestRandomLoss(t *testing.T) {
	n, s := twoNodeNet(t, topology.DefaultAccess, Config{LossRate: 0.5})
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	delivered := 0
	e2.SetRecv(func(overlay.Address, []byte) { delivered++ })
	for i := 0; i < 200; i++ {
		_ = e1.Send(2, make([]byte, 100))
		s.RunFor(10 * time.Millisecond) // space them out: no queue drops
	}
	s.RunUntilIdle()
	if delivered > 100 || delivered < 5 {
		t.Fatalf("delivered %d of 200 with three 50%% loss hops", delivered)
	}
	if n.Stats().RandomLoss == 0 {
		t.Fatal("loss counter untouched")
	}
}

func TestNodeDown(t *testing.T) {
	n, s := twoNodeNet(t, topology.DefaultAccess, Config{})
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	delivered := 0
	e2.SetRecv(func(overlay.Address, []byte) { delivered++ })
	if err := n.SetDown(2, true); err != nil {
		t.Fatal(err)
	}
	_ = e1.Send(2, []byte("x"))
	s.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("delivered to a down node")
	}
	if err := n.SetDown(2, false); err != nil {
		t.Fatal(err)
	}
	_ = e1.Send(2, []byte("x"))
	s.RunUntilIdle()
	if delivered != 1 {
		t.Fatalf("delivered = %d after recovery", delivered)
	}
	if err := n.SetDown(99, true); err == nil {
		t.Fatal("SetDown of unknown address should fail")
	}
}

func TestLoopback(t *testing.T) {
	n, s := twoNodeNet(t, topology.DefaultAccess, Config{})
	e1, _ := n.Endpoint(1)
	got := false
	e1.SetRecv(func(src overlay.Address, p []byte) {
		if src != 1 {
			t.Errorf("loopback src = %v", src)
		}
		got = true
	})
	before := s.Elapsed()
	_ = e1.Send(1, []byte("self"))
	s.RunUntilIdle()
	if !got {
		t.Fatal("loopback not delivered")
	}
	if s.Elapsed() != before {
		t.Fatal("loopback should not advance time")
	}
}

func TestSendErrors(t *testing.T) {
	n, _ := twoNodeNet(t, topology.DefaultAccess, Config{})
	e1, _ := n.Endpoint(1)
	if err := e1.Send(2, make([]byte, MTU+1)); err == nil {
		t.Fatal("oversize datagram should be rejected")
	}
	if err := e1.Send(42, []byte("x")); err == nil {
		t.Fatal("send to unattached address should fail")
	}
	if _, err := n.Endpoint(42); err == nil {
		t.Fatal("endpoint for unattached address should fail")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Stats, time.Duration) {
		g, err := topology.INET(topology.DefaultINET(50, 3))
		if err != nil {
			t.Fatal(err)
		}
		addrs := topology.AttachClients(g, 10, 1, topology.DefaultAccess, 3)
		s := NewScheduler(11)
		n := New(s, g, Config{LossRate: 0.01})
		for _, a := range addrs {
			ep, _ := n.Endpoint(a)
			ep.SetRecv(func(overlay.Address, []byte) {})
		}
		rng := s.Rand()
		for i := 0; i < 500; i++ {
			src, _ := n.Endpoint(addrs[rng.Intn(len(addrs))])
			dst := addrs[rng.Intn(len(addrs))]
			_ = src.Send(dst, make([]byte, 100+rng.Intn(1000)))
			s.RunFor(time.Millisecond)
		}
		s.RunUntilIdle()
		return n.Stats(), s.Elapsed()
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || e1 != e2 {
		t.Fatalf("nondeterministic: %+v/%v vs %+v/%v", s1, e1, s2, e2)
	}
}

func TestLinkCounters(t *testing.T) {
	n, s := twoNodeNet(t, topology.DefaultAccess, Config{})
	e1, _ := n.Endpoint(1)
	e2, _ := n.Endpoint(2)
	e2.SetRecv(func(overlay.Address, []byte) {})
	_ = e1.Send(2, make([]byte, 500))
	s.RunUntilIdle()
	var total uint64
	for _, l := range n.Graph().Links() {
		total += n.LinkCounters(l.ID).Packets
	}
	if total != 3 { // access out, middle, access in
		t.Fatalf("per-link packet total = %d, want 3", total)
	}
}
