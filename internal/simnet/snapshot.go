package simnet

import (
	"time"

	"macedon/internal/overlay"
	"macedon/internal/statecopy"
	"macedon/internal/topology"
)

// Checkpoint/fork support (docs/sweeps.md): a scheduler and network snapshot
// captures everything the emulator mutates as virtual time advances, so a
// scenario sweep can run the expensive settled prefix once, fork, and rewind
// between variant branches. Snapshots are restore-in-place: the pending
// events' closures keep pointing at the same scheduler, link, and endpoint
// objects, whose state is rewritten underneath them.
//
// Both Snapshot and Restore must be called from the coordinating goroutine
// between RunFor windows, when every shard worker is parked — exactly the
// points where all cross-goroutine state is already synchronized.

// The emulator's own types opt out of the statecopy walk: their state is
// captured by the snapshots below (scheduler, network, endpoints, timers) or
// is immutable for the lifetime of an experiment (substrate handles).
func (s *Scheduler) StateCopyOpaque()      {}
func (n *Network) StateCopyOpaque()        {}
func (ns *NodeSubstrate) StateCopyOpaque() {}
func (e *endpoint) StateCopyOpaque()       {}
func (t *simTimer) StateCopyOpaque()       {}

// timerFlags is one timer's lazy-cancellation state at snapshot time.
type timerFlags struct{ fired, stopped bool }

// shardSnapshot captures one event shard.
type shardSnapshot struct {
	evts     []event
	now      time.Duration
	executed uint64
}

// SchedulerSnapshot is a restorable capture of the event loop: the global
// and per-shard event heaps, every queued timer's cancellation flags, the
// virtual clocks, the deterministic (time, actor, seq) counters, and the
// seeded PRNG. Event closures are shared with the live heaps — restore-in-
// place is what keeps them valid.
type SchedulerSnapshot struct {
	now       time.Duration
	globalSeq uint64
	executed  uint64
	global    []event
	shards    []shardSnapshot
	timers    map[*simTimer]timerFlags
	rng       *statecopy.Image
}

// Snapshot captures the scheduler. Call between RunFor windows only.
func (s *Scheduler) Snapshot() *SchedulerSnapshot {
	cp := &SchedulerSnapshot{
		now:       s.now,
		globalSeq: s.globalSeq,
		executed:  s.executed,
		global:    append([]event(nil), s.global...),
		timers:    make(map[*simTimer]timerFlags),
		rng:       statecopy.Capture(s.rng),
	}
	collect := func(evts []event) {
		for _, e := range evts {
			if e.tm != nil {
				cp.timers[e.tm] = timerFlags{fired: e.tm.fired, stopped: e.tm.stopped}
			}
		}
	}
	collect(cp.global)
	for _, sh := range s.shards {
		sh.mu.Lock()
		ss := shardSnapshot{
			evts:     append([]event(nil), sh.evts...),
			now:      sh.now,
			executed: sh.executed,
		}
		sh.mu.Unlock()
		collect(ss.evts)
		cp.shards = append(cp.shards, ss)
	}
	return cp
}

// Restore rewinds the scheduler to the snapshot. The snapshot is not
// consumed: restoring again later rewinds to the same point. The shard
// count must match the one the snapshot was taken at.
func (s *Scheduler) Restore(cp *SchedulerSnapshot) {
	if len(cp.shards) != len(s.shards) {
		panic("simnet: scheduler snapshot restored at a different shard count")
	}
	s.now = cp.now
	s.globalSeq = cp.globalSeq
	s.executed = cp.executed
	s.global = append(s.global[:0:0], cp.global...)
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.evts = append(sh.evts[:0:0], cp.shards[i].evts...)
		sh.now = cp.shards[i].now
		sh.executed = cp.shards[i].executed
		sh.mu.Unlock()
	}
	// Timers queued at the snapshot come back to their exact cancellation
	// state: one the branch fired or stopped becomes pending again.
	for tm, f := range cp.timers {
		tm.fired, tm.stopped = f.fired, f.stopped
	}
	cp.rng.Restore()
}

// endpointState captures one endpoint's mutable fields. The receive handler
// is saved too: kill/revive churn in a branch detaches and reattaches it.
type endpointState struct {
	actorSeq uint64
	down     bool
	recv     func(src overlay.Address, payload []byte)
}

// NetworkSnapshot is a restorable capture of the emulated network: per-pipe
// queues, serialization horizons and deterministic loss/event counters,
// endpoint state, injected dynamics (failed links, degradations,
// partitions), and the per-shard packet accounting.
type NetworkSnapshot struct {
	links           []linkState
	eps             map[overlay.Address]endpointState
	blocked         map[topology.LinkID]bool
	degraded        map[topology.LinkID]Degradation
	sides           map[overlay.Address]int
	stats           []shardStats
	oracleEvictions uint64
}

// Snapshot captures the network. Call between RunFor windows only.
func (n *Network) Snapshot() *NetworkSnapshot {
	// Retire the current packet generation: the scheduler snapshot taken
	// alongside this one copies event heaps that reference in-flight packet
	// records, so those records must never re-enter a pool. pktGen is
	// monotonic and deliberately absent from the snapshot — restoring must
	// not resurrect a generation that other snapshots still pin.
	n.pktGen++
	cp := &NetworkSnapshot{
		links:           append([]linkState(nil), n.links...),
		eps:             make(map[overlay.Address]endpointState, len(n.eps)),
		blocked:         make(map[topology.LinkID]bool, len(n.blocked)),
		degraded:        make(map[topology.LinkID]Degradation, len(n.degraded)),
		stats:           append([]shardStats(nil), n.statsBy...),
		oracleEvictions: n.oracleEvictions,
	}
	for a, ep := range n.eps {
		cp.eps[a] = endpointState{actorSeq: ep.actorSeq, down: ep.down, recv: ep.recv}
	}
	for l, b := range n.blocked {
		cp.blocked[l] = b
	}
	for l, d := range n.degraded {
		cp.degraded[l] = d
	}
	if n.sides != nil {
		cp.sides = make(map[overlay.Address]int, len(n.sides))
		for a, s := range n.sides {
			cp.sides[a] = s
		}
	}
	return cp
}

// Restore rewinds the network to the snapshot. Link and stats state is
// written back into the existing backing arrays (queued events hold interior
// pointers into them), path caches are discarded, and the forwarding oracle
// is rebuilt for the restored failure set.
func (n *Network) Restore(cp *NetworkSnapshot) {
	copy(n.links, cp.links)
	copy(n.statsBy, cp.stats)
	for a, st := range cp.eps {
		ep := n.eps[a]
		ep.actorSeq = st.actorSeq
		ep.down = st.down
		ep.recv = st.recv
	}
	n.blocked = make(map[topology.LinkID]bool, len(cp.blocked))
	for l, b := range cp.blocked {
		n.blocked[l] = b
	}
	n.degraded = make(map[topology.LinkID]Degradation, len(cp.degraded))
	for l, d := range cp.degraded {
		n.degraded[l] = d
	}
	if cp.sides == nil {
		n.sides = nil
	} else {
		n.sides = make(map[overlay.Address]int, len(cp.sides))
		for a, s := range cp.sides {
			n.sides[a] = s
		}
	}
	n.oracleEvictions = cp.oracleEvictions
	n.invalidatePaths()
}
