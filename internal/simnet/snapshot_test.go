package simnet

import (
	"fmt"
	"testing"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/statecopy"
	"macedon/internal/topology"
)

// buildPair returns a two-client network for snapshot tests.
func buildPair(t *testing.T, shards int) (*Scheduler, *Network) {
	t.Helper()
	g := topology.NewGraph()
	r1, r2 := g.AddRouter(), g.AddRouter()
	g.AddLink(r1, r2, 5*time.Millisecond, 10_000_000, 64*1500)
	g.AttachClient(1, r1, topology.DefaultAccess)
	g.AttachClient(2, r2, topology.DefaultAccess)
	sched := NewSharded(7, shards)
	net := New(sched, g, Config{})
	return sched, net
}

// TestSchedulerSnapshotRewind proves a branch replays identically after a
// restore: timers, in-flight packets, and the per-link serialization state
// all rewind.
func TestSchedulerSnapshotRewind(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sched, net := buildPair(t, shards)
			defer sched.Close()
			var log []string
			sub1, err := net.NodeNet(1)
			if err != nil {
				t.Fatal(err)
			}
			ep2, err := net.Endpoint(2)
			if err != nil {
				t.Fatal(err)
			}
			ep2.SetRecv(func(src overlay.Address, payload []byte) {
				log = append(log, fmt.Sprintf("recv %v at %v", payload, sched.Elapsed()))
			})
			ep1, err := net.Endpoint(1)
			if err != nil {
				t.Fatal(err)
			}
			// A periodic sender plus an in-flight packet at snapshot time.
			// The sender's counter lives behind a pointer captured with
			// statecopy, the way the harness captures node state: scheduler
			// and network snapshots rewind the event loop, statecopy rewinds
			// the application state its closures point at.
			state := &struct{ seq byte }{}
			var tick func()
			tick = func() {
				state.seq++
				_ = ep1.Send(2, []byte{state.seq})
				sub1.After(3*time.Millisecond, tick)
			}
			sub1.After(0, tick)
			sched.RunFor(4 * time.Millisecond)

			cpS, cpN := sched.Snapshot(), net.Snapshot()
			cpApp := statecopy.Capture(state)
			branch := func() []string {
				log = nil
				// A branch-created timer that must vanish on restore, and a
				// snapshot-era cancellation that must come back pending.
				sched.RunFor(20 * time.Millisecond)
				return append([]string(nil), log...)
			}
			a := branch()
			sched.Restore(cpS)
			net.Restore(cpN)
			cpApp.Restore()
			seqAt := state.seq
			b := branch()
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("branches diverge:\nA: %v\nB: %v", a, b)
			}
			if state.seq == seqAt {
				t.Fatal("branch B sent nothing; timer state not restored")
			}
			if got, want := net.Stats(), net.Stats(); got != want {
				t.Fatalf("stats unstable: %v vs %v", got, want)
			}
		})
	}
}

// TestSnapshotTimerCancellation checks a timer pending at the snapshot that
// the branch stops (and one the branch lets fire) both come back pending.
func TestSnapshotTimerCancellation(t *testing.T) {
	sched, net := buildPair(t, 1)
	defer sched.Close()
	sub, err := net.NodeNet(1)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	tm := sub.After(10*time.Millisecond, func() { fired++ })
	cp := sched.Snapshot()

	// Branch 1: cancel it; never fires.
	tm.Stop()
	sched.RunFor(30 * time.Millisecond)
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
	// Branch 2: restored to pending; fires once.
	sched.Restore(cp)
	sched.RunFor(30 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("restored timer fired %d times, want 1", fired)
	}
	// Branch 3: restore again after it fired; fires again.
	sched.Restore(cp)
	sched.RunFor(30 * time.Millisecond)
	if fired != 2 {
		t.Fatalf("re-restored timer fired %d times total, want 2", fired)
	}
}

// TestNetworkSnapshotDynamics checks injected dynamics rewind: a partition
// and a failed link applied in a branch are gone after restore.
func TestNetworkSnapshotDynamics(t *testing.T) {
	sched, net := buildPair(t, 1)
	defer sched.Close()
	cpS, cpN := sched.Snapshot(), net.Snapshot()

	net.SetPartition(map[overlay.Address]int{1: 1, 2: 2})
	if err := net.SetNodeAccessDown(1, true); err != nil {
		t.Fatal(err)
	}
	_ = net.SetDown(2, true)
	sched.Restore(cpS)
	net.Restore(cpN)

	if net.Partitioned(1, 2) {
		t.Fatal("partition survived restore")
	}
	up, _, _ := net.Graph().AccessLinks(1)
	if net.LinkDown(up) {
		t.Fatal("failed link survived restore")
	}
	delivered := 0
	ep2, _ := net.Endpoint(2)
	ep2.SetRecv(func(overlay.Address, []byte) { delivered++ })
	ep1, _ := net.Endpoint(1)
	_ = ep1.Send(2, []byte{1})
	sched.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("delivery after restore: got %d, want 1 (node-down state leaked?)", delivered)
	}
}
