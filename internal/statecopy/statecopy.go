// Package statecopy captures and restores the mutable state of an object
// graph in place. It is the foundation of the emulator's checkpoint/fork
// facility (docs/sweeps.md): a scenario sweep runs the expensive settled
// prefix once, captures the world, executes one variant branch, and then
// rewinds to the capture before executing the next.
//
// The central design constraint is that the scheduler's pending events hold
// closures, and those closures capture pointers to live objects — nodes,
// protocol agents, transport connections. A checkpoint therefore cannot
// clone the world into new objects (the queued closures would keep pointing
// at the old ones); it must instead record the state of the existing
// objects and later write that state back into the very same memory, so
// that every pointer captured anywhere stays valid. Capture walks the graph
// through reflection (unexported fields included, via unsafe), deep-copying
// values while memoizing pointers and maps by identity; Restore replays the
// copies into the original locations. An Image is immutable and may be
// restored any number of times.
//
// Walk semantics, by kind:
//
//   - Plain data (booleans, numbers, strings, and arrays/structs of them)
//     is copied by value.
//   - Pointers are memoized by (address, type): the pointee's state is
//     captured once, and restore writes it back through the original
//     pointer, so aliased pointers stay aliased and pointer identity is
//     preserved across the rewind.
//   - Maps are memoized by identity and restored by clearing and refilling
//     the original map object — code that replaced the map wholesale in a
//     branch gets the original object back.
//   - Slices are restored into freshly allocated arrays (two fields that
//     shared one backing array before capture come back unaliased; the
//     engine's state holds no such aliases).
//   - Funcs, channels, and unsafe pointers are shared: the reference is
//     restored but the referent is not walked. For channels this is what a
//     quiescent checkpoint needs — the engine only checkpoints at event-loop
//     barriers, where every semaphore channel is back in its idle state.
//   - sync.* values (mutexes, once, waitgroups) are left completely
//     untouched: at a barrier they are unlocked, and overwriting them could
//     only do harm.
//   - time.Time is copied shallowly (sharing the immutable *Location).
//   - A pointer whose type implements Opaque is shared without being
//     walked. Infrastructure that snapshots itself separately (the
//     scheduler, the network, endpoints, timers) and immutable registries
//     (protocol definitions, tracers) opt out this way, which is also what
//     stops the walk at package boundaries.
package statecopy

import (
	"fmt"
	"reflect"
	"time"
	"unsafe"
)

// Opaque marks a type whose pointers are shared, not walked, by Capture.
// Implementations either have no mutable state, or snapshot their state
// through their own mechanism at the same barrier (the event scheduler, the
// emulated network).
type Opaque interface{ StateCopyOpaque() }

var (
	opaqueType = reflect.TypeOf((*Opaque)(nil)).Elem()
	timeType   = reflect.TypeOf(time.Time{})
)

// Image is an immutable capture of an object graph's mutable state,
// restorable into the original objects any number of times.
type Image struct {
	roots []rootEntry
	ptrs  []*ptrEntry
	maps  []*mapEntry
}

type rootEntry struct {
	target reflect.Value // pointer to the root location
	state  saved
}

// ptrEntry memoizes one captured pointee.
type ptrEntry struct {
	orig  reflect.Value // the pointer, as captured
	state saved         // pointee state
}

// mapEntry memoizes one captured map.
type mapEntry struct {
	orig       reflect.Value // the map reference, as captured
	keys, vals []saved
}

// saved is one node of the captured representation.
type saved interface{}

type (
	savBits    struct{ v reflect.Value } // addressable private copy; contains no references
	savShare   struct{ v reflect.Value } // reference restored as-is, referent not walked
	savNothing struct{}                  // left untouched on restore (sync.*)
	savPtr     struct{ e *ptrEntry }
	savMap     struct{ e *mapEntry }
	savSlice   struct {
		t     reflect.Type
		elems []saved
	}
	savBitsSlice struct{ v reflect.Value } // private copy of a reference-free slice
	savStruct    struct {
		t      reflect.Type
		fields []saved
	}
	savArray struct {
		t     reflect.Type
		elems []saved
	}
	savIface struct {
		t    reflect.Type // the interface type
		dynT reflect.Type // dynamic type, nil for a nil interface
		val  saved
	}
)

// Capture records the state reachable from the given roots. Every root must
// be a non-nil pointer (to a struct, map, slice, or any other value); the
// pointed-to state is what Restore later rewrites.
func Capture(roots ...any) *Image {
	c := &capturer{
		ptrs:  make(map[ptrKey]*ptrEntry),
		maps:  make(map[unsafe.Pointer]*mapEntry),
		plain: make(map[reflect.Type]bool),
	}
	im := &Image{}
	for _, r := range roots {
		v := reflect.ValueOf(r)
		if v.Kind() != reflect.Ptr || v.IsNil() {
			panic(fmt.Sprintf("statecopy: root must be a non-nil pointer, got %T", r))
		}
		im.roots = append(im.roots, rootEntry{target: v, state: c.capture(v.Elem())})
	}
	for _, e := range c.ptrs {
		im.ptrs = append(im.ptrs, e)
	}
	for _, e := range c.maps {
		im.maps = append(im.maps, e)
	}
	return im
}

// Restore writes the captured state back into the original objects. The
// image itself is not consumed; restoring again later rewinds to the same
// point.
func (im *Image) Restore() {
	r := &restorer{
		ptrDone: make(map[*ptrEntry]bool, len(im.ptrs)),
		mapDone: make(map[*mapEntry]bool, len(im.maps)),
	}
	for _, root := range im.roots {
		r.restore(root.target.Elem(), root.state)
	}
	// Pointees reachable only through shared references (e.g. a pointer held
	// exclusively by a closure) still need their state back.
	for _, e := range im.ptrs {
		r.restorePtr(e)
	}
	for _, e := range im.maps {
		r.restoreMap(e)
	}
}

type ptrKey struct {
	p unsafe.Pointer
	t reflect.Type
}

type capturer struct {
	ptrs  map[ptrKey]*ptrEntry
	maps  map[unsafe.Pointer]*mapEntry
	plain map[reflect.Type]bool
}

// isPlain reports whether t contains no references anywhere: such values are
// captured by plain copy.
func (c *capturer) isPlain(t reflect.Type) bool {
	if done, ok := c.plain[t]; ok {
		return done
	}
	// Guard against recursive types: a struct can only recurse through a
	// reference kind, which makes it non-plain anyway, so seeding false is
	// always consistent.
	c.plain[t] = false
	plain := false
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128, reflect.String:
		plain = true
	case reflect.Array:
		plain = c.isPlain(t.Elem())
	case reflect.Struct:
		if t == timeType {
			plain = true // shallow copy; *Location is immutable and shared
			break
		}
		plain = true
		for i := 0; i < t.NumField(); i++ {
			if !c.isPlain(t.Field(i).Type) {
				plain = false
				break
			}
		}
	}
	c.plain[t] = plain
	return plain
}

// copyToTemp returns a freshly allocated, addressable copy of v.
func copyToTemp(v reflect.Value) reflect.Value {
	n := reflect.New(v.Type()).Elem()
	n.Set(v)
	return n
}

// fieldView returns a readable, settable view of struct field i, unexported
// fields included. v must be addressable.
func fieldView(v reflect.Value, i int) reflect.Value {
	f := v.Field(i)
	if f.CanSet() {
		return f
	}
	return reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem()
}

func isSyncType(t reflect.Type) bool {
	pkg := t.PkgPath()
	return pkg == "sync" || pkg == "sync/atomic"
}

// capture records v's state. v must be readable without restriction (the
// walker only ever passes values laundered through fieldView or copyToTemp).
func (c *capturer) capture(v reflect.Value) saved {
	t := v.Type()
	if c.isPlain(t) {
		return savBits{v: copyToTemp(v)}
	}
	switch t.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return savShare{v: copyToTemp(v)}
		}
		if t.Implements(opaqueType) {
			return savShare{v: copyToTemp(v)}
		}
		if isSyncType(t.Elem()) {
			return savShare{v: copyToTemp(v)}
		}
		key := ptrKey{p: unsafe.Pointer(v.Pointer()), t: t.Elem()}
		if e, ok := c.ptrs[key]; ok {
			return savPtr{e: e}
		}
		e := &ptrEntry{orig: copyToTemp(v)}
		c.ptrs[key] = e // memoize before walking: cycles resolve to e
		e.state = c.capture(v.Elem())
		return savPtr{e: e}
	case reflect.Map:
		if v.IsNil() {
			return savShare{v: copyToTemp(v)}
		}
		key := unsafe.Pointer(v.Pointer())
		if e, ok := c.maps[key]; ok {
			return savMap{e: e}
		}
		e := &mapEntry{orig: copyToTemp(v)}
		c.maps[key] = e
		iter := v.MapRange()
		for iter.Next() {
			e.keys = append(e.keys, c.capture(copyToTemp(iter.Key())))
			e.vals = append(e.vals, c.capture(copyToTemp(iter.Value())))
		}
		return savMap{e: e}
	case reflect.Slice:
		if v.IsNil() {
			return savShare{v: copyToTemp(v)}
		}
		if c.isPlain(t.Elem()) {
			n := reflect.MakeSlice(t, v.Len(), v.Len())
			reflect.Copy(n, v)
			return savBitsSlice{v: n}
		}
		s := savSlice{t: t, elems: make([]saved, v.Len())}
		for i := 0; i < v.Len(); i++ {
			s.elems[i] = c.capture(v.Index(i))
		}
		return s
	case reflect.Array:
		s := savArray{t: t, elems: make([]saved, v.Len())}
		for i := 0; i < v.Len(); i++ {
			s.elems[i] = c.capture(c.addressableElem(v, i))
		}
		return s
	case reflect.Struct:
		if isSyncType(t) {
			return savNothing{}
		}
		// A struct whose pointer receiver declares StateCopyOpaque opts out
		// even when embedded by value (e.g. a per-shard pool inside an
		// array): its state is scratch, never part of a checkpoint.
		if reflect.PointerTo(t).Implements(opaqueType) {
			return savNothing{}
		}
		av := v
		if !av.CanAddr() {
			av = copyToTemp(v)
		}
		s := savStruct{t: t, fields: make([]saved, t.NumField())}
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).Type.Size() == 0 {
				s.fields[i] = savNothing{}
				continue
			}
			s.fields[i] = c.capture(fieldView(av, i))
		}
		return s
	case reflect.Interface:
		if v.IsNil() {
			return savIface{t: t}
		}
		dyn := v.Elem()
		return savIface{t: t, dynT: dyn.Type(), val: c.capture(copyToTemp(dyn))}
	case reflect.Func, reflect.Chan, reflect.UnsafePointer:
		return savShare{v: copyToTemp(v)}
	}
	// Remaining kinds are plain and handled above; be safe for anything new.
	return savBits{v: copyToTemp(v)}
}

// addressableElem returns an addressable view of array element i.
func (c *capturer) addressableElem(v reflect.Value, i int) reflect.Value {
	if v.CanAddr() {
		e := v.Index(i)
		if e.CanSet() {
			return e
		}
		return reflect.NewAt(e.Type(), unsafe.Pointer(e.UnsafeAddr())).Elem()
	}
	return copyToTemp(v.Index(i))
}

type restorer struct {
	ptrDone map[*ptrEntry]bool
	mapDone map[*mapEntry]bool
}

// restore writes state s into destination dst. dst must be settable (the
// walker launders unexported fields through fieldView).
func (r *restorer) restore(dst reflect.Value, s saved) {
	switch s := s.(type) {
	case savBits:
		dst.Set(s.v)
	case savShare:
		dst.Set(s.v)
	case savNothing:
	case savPtr:
		r.restorePtr(s.e)
		dst.Set(s.e.orig)
	case savMap:
		r.restoreMap(s.e)
		dst.Set(s.e.orig)
	case savBitsSlice:
		n := reflect.MakeSlice(s.v.Type(), s.v.Len(), s.v.Len())
		reflect.Copy(n, s.v)
		dst.Set(n)
	case savSlice:
		n := reflect.MakeSlice(s.t, len(s.elems), len(s.elems))
		for i, es := range s.elems {
			r.restore(n.Index(i), es)
		}
		dst.Set(n)
	case savArray:
		n := reflect.New(s.t).Elem()
		for i, es := range s.elems {
			r.restore(n.Index(i), es)
		}
		dst.Set(n)
	case savStruct:
		if dst.Type() != s.t {
			panic(fmt.Sprintf("statecopy: restore type mismatch: %v vs %v", dst.Type(), s.t))
		}
		for i, fs := range s.fields {
			if _, skip := fs.(savNothing); skip {
				continue
			}
			r.restore(fieldView(dst, i), fs)
		}
	case savIface:
		if s.dynT == nil {
			dst.Set(reflect.Zero(s.t))
			return
		}
		tmp := reflect.New(s.dynT).Elem()
		r.restore(tmp, s.val)
		dst.Set(tmp)
	default:
		panic(fmt.Sprintf("statecopy: unknown saved node %T", s))
	}
}

func (r *restorer) restorePtr(e *ptrEntry) {
	if r.ptrDone[e] {
		return
	}
	r.ptrDone[e] = true
	r.restore(e.orig.Elem(), e.state)
}

func (r *restorer) restoreMap(e *mapEntry) {
	if r.mapDone[e] {
		return
	}
	r.mapDone[e] = true
	m := e.orig
	for _, k := range m.MapKeys() {
		m.SetMapIndex(k, reflect.Value{})
	}
	for i := range e.keys {
		k := reflect.New(m.Type().Key()).Elem()
		r.restore(k, e.keys[i])
		v := reflect.New(m.Type().Elem()).Elem()
		r.restore(v, e.vals[i])
		m.SetMapIndex(k, v)
	}
}
