package statecopy

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

type opaqueThing struct{ n int }

func (*opaqueThing) StateCopyOpaque() {}

type inner struct {
	id    int
	tags  []string
	links map[string]*inner
}

type world struct {
	mu      sync.Mutex
	name    string
	count   int
	when    time.Time
	buf     []byte
	nested  [3]inner
	byName  map[string]*inner
	self    *world
	iface   any
	op      *opaqueThing
	fn      func() int
	ch      chan int
	nilPtr  *inner
	nilMap  map[int]int
	nilSl   []int
	ptrPair [2]*inner // aliased pointers
}

func buildWorld() *world {
	a := &inner{id: 1, tags: []string{"a"}, links: map[string]*inner{}}
	b := &inner{id: 2, tags: []string{"b", "bb"}, links: map[string]*inner{"a": a}}
	a.links["b"] = b // cycle
	w := &world{
		name:   "w",
		count:  7,
		when:   time.Unix(100, 0),
		buf:    []byte{1, 2, 3},
		byName: map[string]*inner{"a": a, "b": b},
		iface:  inner{id: 42, tags: []string{"iface"}},
		op:     &opaqueThing{n: 5},
		fn:     func() int { return 11 },
		ch:     make(chan int, 1),
	}
	w.self = w
	w.nested[0] = inner{id: 10, tags: []string{"n0"}}
	w.ptrPair = [2]*inner{a, a}
	return w
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	w := buildWorld()
	a := w.byName["a"]
	origMap := w.byName
	im := Capture(w)

	// Mutate everything a branch plausibly would.
	w.name = "mutated"
	w.count = 999
	w.when = time.Unix(999, 0)
	w.buf[0] = 77
	w.buf = append(w.buf, 9)
	a.id = 1000
	a.tags = append(a.tags, "extra")
	delete(w.byName, "b")
	w.byName["c"] = &inner{id: 3}
	w.byName = map[string]*inner{"replaced": nil} // wholesale replacement
	w.nested[0].id = -1
	w.iface = "something else"
	w.op.n = 500 // opaque: must NOT be restored
	w.nilPtr = &inner{id: 4}
	w.ptrPair[1] = &inner{id: 5}

	im.Restore()

	if w.name != "w" || w.count != 7 || !w.when.Equal(time.Unix(100, 0)) {
		t.Fatalf("plain fields not restored: %q %d %v", w.name, w.count, w.when)
	}
	if len(w.buf) != 3 || w.buf[0] != 1 {
		t.Fatalf("byte slice not restored: %v", w.buf)
	}
	if w.byName == nil || len(w.byName) != 2 {
		t.Fatalf("map not restored: %v", w.byName)
	}
	if &w.byName != &w.byName || w.byName["a"] != a {
		t.Fatal("map pointer identity lost")
	}
	if got := w.byName; mapsDiffer(got, origMap) {
		t.Fatal("restored map is not the original map object")
	}
	if a.id != 1 || len(a.tags) != 1 || a.tags[0] != "a" {
		t.Fatalf("pointee not restored in place: %+v", a)
	}
	if a.links["b"].links["a"] != a {
		t.Fatal("cycle broken")
	}
	if w.nested[0].id != 10 {
		t.Fatalf("array element not restored: %+v", w.nested[0])
	}
	if v, ok := w.iface.(inner); !ok || v.id != 42 {
		t.Fatalf("interface not restored: %#v", w.iface)
	}
	if w.op.n != 500 {
		t.Fatal("opaque pointee was walked; must be shared untouched")
	}
	if w.self != w {
		t.Fatal("self pointer identity lost")
	}
	if w.nilPtr != nil || w.nilMap != nil || w.nilSl != nil {
		t.Fatal("nil references not restored to nil")
	}
	if w.ptrPair[0] != a || w.ptrPair[1] != a {
		t.Fatal("aliased pointers diverged")
	}
	if w.fn == nil || w.fn() != 11 || w.ch == nil {
		t.Fatal("func/chan references lost")
	}
}

func mapsDiffer(a, b map[string]*inner) bool {
	if len(a) != len(b) {
		return true
	}
	for k, v := range a {
		if b[k] != v {
			return true
		}
	}
	return false
}

// TestRestoreTwice checks an image survives multiple restores: the second
// rewind must be as faithful as the first even after the first branch
// corrupted state again.
func TestRestoreTwice(t *testing.T) {
	w := buildWorld()
	a := w.byName["a"]
	im := Capture(w)
	for round := 0; round < 2; round++ {
		a.id = 100 + round
		a.tags = nil
		w.byName = nil
		im.Restore()
		if a.id != 1 || len(a.tags) != 1 {
			t.Fatalf("round %d: pointee not restored: %+v", round, a)
		}
		if w.byName["a"] != a {
			t.Fatalf("round %d: map not restored", round)
		}
	}
}

// TestClosureOnlyPointer checks state reachable solely through a captured
// root pointer is restored even when a branch drops every field reference to
// it (the scheduler-closure situation: the closure keeps the pointer, the
// walker must keep its state).
func TestClosureOnlyPointer(t *testing.T) {
	a := &inner{id: 1}
	holder := struct{ p *inner }{p: a}
	im := Capture(&holder)
	holder.p = nil
	a.id = 99
	im.Restore()
	if holder.p != a || a.id != 1 {
		t.Fatalf("closure-held pointee not restored: %v %d", holder.p, a.id)
	}
}

// TestUnexportedAcrossPackages exercises walking a foreign type with
// unexported fields (time.Timer-like shapes appear all over the engine).
func TestUnexportedAcrossPackages(t *testing.T) {
	type carrier struct{ d time.Duration }
	c := &carrier{d: 5 * time.Second}
	im := Capture(c)
	c.d = time.Hour
	im.Restore()
	if c.d != 5*time.Second {
		t.Fatalf("duration not restored: %v", c.d)
	}
}

// TestMathRandRewind proves a stdlib PRNG rewinds exactly: the engine relies
// on this for per-node protocol randomness across fork branches.
func TestMathRandRewind(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		rng.Int63()
	}
	im := Capture(rng)
	want := make([]int64, 50)
	for i := range want {
		want[i] = rng.Int63()
	}
	rng.Float64()
	rng.Intn(7)
	im.Restore()
	for i := range want {
		if got := rng.Int63(); got != want[i] {
			t.Fatalf("draw %d: got %d want %d", i, got, want[i])
		}
	}
}
