// Package substrate defines the narrow interface between the MACEDON engine
// and whatever carries its packets and drives its clock: the simnet emulator
// (ModelNet's role in the paper) or livenet (native sockets on a real
// network). Generated protocol code never touches these directly; the engine
// and transport subsystems are the only consumers, which is what lets the
// same protocol run unmodified in emulation and live deployment (§4.3).
package substrate

import (
	"time"

	"macedon/internal/overlay"
)

// Timer is a cancellable pending callback.
type Timer interface {
	// Stop cancels the timer; it reports whether the callback was still
	// pending (false means it already fired or was already stopped).
	Stop() bool
}

// Clock schedules future work. Simulated clocks advance virtually; the live
// clock is the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After schedules fn once after d. fn runs on the substrate's event
	// goroutine; it must not block.
	After(d time.Duration, fn func()) Timer
}

// Endpoint is an unreliable datagram port bound to one overlay address: the
// "network substrate (TCP/IP, ns)" box at the bottom of the paper's Figure 2.
// Reliability, ordering and congestion control are built above it by the
// transport subsystem.
type Endpoint interface {
	// Addr returns the address the endpoint is bound to.
	Addr() overlay.Address
	// Send transmits one datagram toward dst. Delivery is not guaranteed;
	// datagrams larger than MTU are rejected.
	Send(dst overlay.Address, payload []byte) error
	// SetRecv installs the delivery callback. It must be set before any
	// traffic arrives and may be set only once.
	SetRecv(fn func(src overlay.Address, payload []byte))
	// MTU returns the largest payload Send accepts.
	MTU() int
}

// Network hands out endpoints and a clock: one per experiment or deployment.
type Network interface {
	Clock
	// Endpoint returns the datagram port for an attached address.
	Endpoint(addr overlay.Address) (Endpoint, error)
}
