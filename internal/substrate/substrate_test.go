package substrate_test

import (
	"testing"
	"time"

	"macedon/internal/livenet"
	"macedon/internal/overlay"
	"macedon/internal/simnet"
	"macedon/internal/substrate"
	"macedon/internal/topology"
)

// Both backends must satisfy the substrate contract at compile time: the
// emulator's global and shard-bound networks, and the live-deployment one.
var (
	_ substrate.Network = (*simnet.Network)(nil)
	_ substrate.Network = (*simnet.NodeSubstrate)(nil)
	_ substrate.Network = (*livenet.Network)(nil)
)

// contractNet builds a two-client emulated topology and returns it as a
// bare substrate.Network, so every assertion below goes through the
// interface the engine actually programs against.
func contractNet(t *testing.T) (substrate.Network, *simnet.Scheduler) {
	t.Helper()
	g := topology.NewGraph()
	r := g.AddRouter()
	r2 := g.AddRouter()
	g.AddLink(r, r2, 5*time.Millisecond, 1_000_000, 10*1500)
	g.AttachClient(1, r, topology.DefaultAccess)
	g.AttachClient(2, r2, topology.DefaultAccess)
	s := simnet.NewScheduler(7)
	return simnet.New(s, g, simnet.Config{}), s
}

func TestEndpointRoundTrip(t *testing.T) {
	n, s := contractNet(t)
	e1, err := n.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := n.Endpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Addr() != 1 || e2.Addr() != 2 {
		t.Fatalf("Addr() = %v, %v", e1.Addr(), e2.Addr())
	}
	var gotSrc overlay.Address
	var gotPayload []byte
	e2.SetRecv(func(src overlay.Address, p []byte) {
		gotSrc = src
		gotPayload = append([]byte(nil), p...)
	})
	if err := e1.Send(2, []byte("datagram")); err != nil {
		t.Fatal(err)
	}
	s.RunUntilIdle()
	if gotSrc != 1 || string(gotPayload) != "datagram" {
		t.Fatalf("received src=%v payload=%q", gotSrc, gotPayload)
	}
}

func TestEndpointRejectsOversizedDatagram(t *testing.T) {
	n, _ := contractNet(t)
	e1, err := n.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.MTU() <= 0 {
		t.Fatalf("MTU() = %d, want positive", e1.MTU())
	}
	if err := e1.Send(2, make([]byte, e1.MTU()+1)); err == nil {
		t.Fatal("Send accepted a datagram larger than MTU")
	}
	if err := e1.Send(2, make([]byte, e1.MTU())); err != nil {
		t.Fatalf("Send rejected an MTU-sized datagram: %v", err)
	}
}

func TestEndpointUnknownAddress(t *testing.T) {
	n, _ := contractNet(t)
	if _, err := n.Endpoint(99); err == nil {
		t.Fatal("Endpoint(99) succeeded for an unattached address")
	}
}

func TestClockAfterOrderingAndStop(t *testing.T) {
	n, s := contractNet(t)
	var fired []int
	n.After(20*time.Millisecond, func() { fired = append(fired, 2) })
	n.After(10*time.Millisecond, func() { fired = append(fired, 1) })
	canceled := n.After(15*time.Millisecond, func() { fired = append(fired, 99) })
	if !canceled.Stop() {
		t.Fatal("Stop() on a pending timer reported already-fired")
	}
	if canceled.Stop() {
		t.Fatal("second Stop() reported the callback still pending")
	}
	s.RunUntilIdle()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
}

func TestClockNowAdvancesWithVirtualTime(t *testing.T) {
	n, s := contractNet(t)
	start := n.Now()
	var at time.Time
	n.After(42*time.Millisecond, func() { at = n.Now() })
	s.RunUntilIdle()
	if got := at.Sub(start); got != 42*time.Millisecond {
		t.Fatalf("callback observed Now() %v after start, want 42ms", got)
	}
}
