package topology

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"macedon/internal/overlay"
)

// INETParams configures the INET-style power-law topology generator. The
// paper's experiments use 20,000-node INET graphs with 200–1000 clients
// multiplexed onto them; the same construction at configurable scale.
type INETParams struct {
	Routers int   // number of router vertices (>= 4)
	Seed    int64 // PRNG seed; the same seed reproduces the same graph

	// EdgesPerNode is the preferential-attachment out-degree of each joining
	// router (the classic m parameter); heavy-tailed degrees emerge.
	EdgesPerNode int
	// ExtraEdgeFrac adds ExtraEdgeFrac*Routers random shortcut edges,
	// mimicking INET's deviation from a pure tree-like core.
	ExtraEdgeFrac float64

	// CoreBandwidth is assigned to links whose endpoints are both in the top
	// decile by degree; TransitBandwidth to mixed links; StubBandwidth to
	// links between low-degree routers.
	CoreBandwidth, TransitBandwidth, StubBandwidth int64
	// QueueBytes is the drop-tail capacity of every router-router pipe.
	QueueBytes int
	// MinLatency/MaxLatency bound per-link propagation delay, which is drawn
	// from the distance between the routers' random plane embeddings.
	MinLatency, MaxLatency time.Duration
}

// DefaultINET returns the generator parameters used throughout the
// experiments, scaled to n routers.
func DefaultINET(n int, seed int64) INETParams {
	return INETParams{
		Routers:          n,
		Seed:             seed,
		EdgesPerNode:     2,
		ExtraEdgeFrac:    0.2,
		CoreBandwidth:    155_000_000, // OC-3 core
		TransitBandwidth: 45_000_000,  // T3 transit
		StubBandwidth:    10_000_000,  // Ethernet stub
		QueueBytes:       150 * 1500,  // 150 full packets
		MinLatency:       time.Millisecond,
		MaxLatency:       40 * time.Millisecond,
	}
}

// INET generates a power-law router graph by degree-preferential attachment
// over a random plane embedding, then classifies link bandwidths by endpoint
// degree. The result is connected by construction.
func INET(p INETParams) (*Graph, error) {
	if p.Routers < 4 {
		return nil, fmt.Errorf("topology: INET needs >= 4 routers, got %d", p.Routers)
	}
	if p.EdgesPerNode < 1 {
		p.EdgesPerNode = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := NewGraph()

	xs := make([]float64, p.Routers)
	ys := make([]float64, p.Routers)
	for i := 0; i < p.Routers; i++ {
		g.AddRouter()
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}

	latency := func(a, b RouterID) time.Duration {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		d := math.Sqrt(dx*dx+dy*dy) / math.Sqrt2 // normalize to [0,1]
		lat := p.MinLatency + time.Duration(d*float64(p.MaxLatency-p.MinLatency))
		return lat
	}

	// Preferential attachment: each vertex i >= 1 wires to EdgesPerNode
	// earlier vertices chosen with probability proportional to degree+1.
	// repeated[] holds one entry per degree endpoint, the standard trick.
	var repeated []RouterID
	type pending struct{ a, b RouterID }
	var edges []pending
	have := make(map[[2]RouterID]bool)
	addEdge := func(a, b RouterID) {
		if a == b {
			return
		}
		k := [2]RouterID{min32(a, b), max32(a, b)}
		if have[k] {
			return
		}
		have[k] = true
		edges = append(edges, pending{a, b})
		repeated = append(repeated, a, b)
	}
	addEdge(0, 1)
	for i := 2; i < p.Routers; i++ {
		v := RouterID(i)
		for e := 0; e < p.EdgesPerNode; e++ {
			t := repeated[rng.Intn(len(repeated))]
			if t == v {
				t = RouterID(rng.Intn(i))
			}
			addEdge(v, t)
		}
		if g := len(edges); g == 0 {
			addEdge(v, RouterID(rng.Intn(i)))
		}
	}
	extra := int(p.ExtraEdgeFrac * float64(p.Routers))
	for e := 0; e < extra; e++ {
		a := RouterID(rng.Intn(p.Routers))
		b := RouterID(rng.Intn(p.Routers))
		addEdge(a, b)
	}

	// Degree census for bandwidth classification.
	deg := make([]int, p.Routers)
	for _, e := range edges {
		deg[e.a]++
		deg[e.b]++
	}
	hi := degreeThreshold(deg, 0.9)
	for _, e := range edges {
		var bw int64
		switch {
		case deg[e.a] >= hi && deg[e.b] >= hi:
			bw = p.CoreBandwidth
		case deg[e.a] >= hi || deg[e.b] >= hi:
			bw = p.TransitBandwidth
		default:
			bw = p.StubBandwidth
		}
		g.AddLink(e.a, e.b, latency(e.a, e.b), bw, p.QueueBytes)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("topology: INET generation produced a disconnected graph (seed %d)", p.Seed)
	}
	return g, nil
}

func degreeThreshold(deg []int, quantile float64) int {
	if len(deg) == 0 {
		return 0
	}
	cp := append([]int(nil), deg...)
	// insertion sort is fine at generation time for the sizes involved; keep
	// the dependency surface minimal.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	idx := int(quantile * float64(len(cp)-1))
	return cp[idx]
}

func min32(a, b RouterID) RouterID {
	if a < b {
		return a
	}
	return b
}

func max32(a, b RouterID) RouterID {
	if a > b {
		return a
	}
	return b
}

// StubRouters returns the router vertices in the bottom quartile by degree:
// where clients should attach (clients never attach at the core, matching
// how the paper places ModelNet edge nodes).
func StubRouters(g *Graph) []RouterID {
	n := g.NumRouters()
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = g.Degree(RouterID(i))
	}
	lo := degreeThreshold(deg, 0.25)
	var out []RouterID
	for i := 0; i < n; i++ {
		if _, isClient := g.ClientAt(RouterID(i)); isClient {
			continue
		}
		if deg[i] <= lo {
			out = append(out, RouterID(i))
		}
	}
	if len(out) == 0 {
		for i := 0; i < n; i++ {
			out = append(out, RouterID(i))
		}
	}
	return out
}

// AttachClients attaches n sequentially numbered clients (addresses base,
// base+1, …) to randomly chosen stub routers and returns their addresses.
func AttachClients(g *Graph, n int, base overlay.Address, access AccessLink, seed int64) []overlay.Address {
	rng := rand.New(rand.NewSource(seed))
	stubs := StubRouters(g)
	addrs := make([]overlay.Address, n)
	for i := 0; i < n; i++ {
		addr := base + overlay.Address(i)
		g.AttachClient(addr, stubs[rng.Intn(len(stubs))], access)
		addrs[i] = addr
	}
	return addrs
}

// TransitStubParams configures the GT-ITM-style transit-stub generator.
type TransitStubParams struct {
	Transits        int // transit domains
	TransitSize     int // routers per transit domain
	StubsPerTransit int // stub domains hanging off each transit router
	StubSize        int // routers per stub domain
	Seed            int64

	TransitBandwidth, StubBandwidth int64
	QueueBytes                      int
}

// DefaultTransitStub returns modest defaults (2×4 transit, 3 stubs of 4).
func DefaultTransitStub(seed int64) TransitStubParams {
	return TransitStubParams{
		Transits: 2, TransitSize: 4, StubsPerTransit: 3, StubSize: 4,
		Seed:             seed,
		TransitBandwidth: 45_000_000,
		StubBandwidth:    10_000_000,
		QueueBytes:       150 * 1500,
	}
}

// TransitStub generates a classic transit-stub topology: a clique-ish ring
// of transit domains, ring-connected transit routers, and stub domains
// (rings) hanging off transit routers.
func TransitStub(p TransitStubParams) (*Graph, error) {
	if p.Transits < 1 || p.TransitSize < 1 || p.StubSize < 1 {
		return nil, fmt.Errorf("topology: bad transit-stub parameters %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := NewGraph()
	lat := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo+1)))
	}
	// Transit routers, ring per domain.
	transit := make([][]RouterID, p.Transits)
	for t := 0; t < p.Transits; t++ {
		transit[t] = make([]RouterID, p.TransitSize)
		for i := range transit[t] {
			transit[t][i] = g.AddRouter()
		}
		for i := range transit[t] {
			if p.TransitSize > 1 {
				g.AddLink(transit[t][i], transit[t][(i+1)%p.TransitSize], lat(2*time.Millisecond, 10*time.Millisecond), p.TransitBandwidth, p.QueueBytes)
			}
		}
	}
	// Inter-transit: connect domain t to t+1 via random representatives.
	for t := 0; t+1 < p.Transits; t++ {
		a := transit[t][rng.Intn(p.TransitSize)]
		b := transit[t+1][rng.Intn(p.TransitSize)]
		g.AddLink(a, b, lat(20*time.Millisecond, 50*time.Millisecond), p.TransitBandwidth, p.QueueBytes)
	}
	// Stub domains.
	for t := 0; t < p.Transits; t++ {
		for _, tr := range transit[t] {
			for s := 0; s < p.StubsPerTransit; s++ {
				stub := make([]RouterID, p.StubSize)
				for i := range stub {
					stub[i] = g.AddRouter()
				}
				for i := range stub {
					if p.StubSize > 1 {
						g.AddLink(stub[i], stub[(i+1)%p.StubSize], lat(time.Millisecond, 5*time.Millisecond), p.StubBandwidth, p.QueueBytes)
					}
				}
				g.AddLink(tr, stub[rng.Intn(p.StubSize)], lat(5*time.Millisecond, 15*time.Millisecond), p.StubBandwidth, p.QueueBytes)
			}
		}
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("topology: transit-stub generation produced a disconnected graph")
	}
	return g, nil
}

// SiteMatrixParams describes an explicit multi-site topology: a full mesh of
// site gateway routers with a given one-way latency matrix, and a LAN per
// site. This re-creates the NICE authors' Internet-like testbed of 8 sites
// from extracted latency information, as the paper does for its Figures 8–9.
type SiteMatrixParams struct {
	// Latency[i][j] is the one-way inter-site latency between gateways i and
	// j. Only the upper triangle is read; the matrix must be square.
	Latency [][]time.Duration
	// LANLatency is the one-way latency of the per-site LAN hop.
	LANLatency time.Duration
	// WANBandwidth/LANBandwidth are the pipe capacities.
	WANBandwidth, LANBandwidth int64
	QueueBytes                 int
}

func (p *SiteMatrixParams) setDefaults() {
	if p.LANLatency <= 0 {
		p.LANLatency = time.Millisecond
	}
	if p.WANBandwidth == 0 {
		p.WANBandwidth = 45_000_000
	}
	if p.LANBandwidth == 0 {
		p.LANBandwidth = 100_000_000
	}
	if p.QueueBytes == 0 {
		p.QueueBytes = 150 * 1500
	}
}

// SiteMatrix builds the site topology and returns the graph plus the gateway
// vertex of each site.
func SiteMatrix(p SiteMatrixParams) (*Graph, []RouterID, error) {
	n := len(p.Latency)
	if n == 0 {
		return nil, nil, fmt.Errorf("topology: empty site matrix")
	}
	for i := range p.Latency {
		if len(p.Latency[i]) != n {
			return nil, nil, fmt.Errorf("topology: site matrix is not square")
		}
	}
	p.setDefaults()
	g := NewGraph()
	gws := make([]RouterID, n)
	for i := range gws {
		gws[i] = g.AddRouter()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if p.Latency[i][j] > 0 {
				g.AddLink(gws[i], gws[j], p.Latency[i][j], p.WANBandwidth, p.QueueBytes)
			}
		}
	}
	if !g.IsConnected() {
		return nil, nil, fmt.Errorf("topology: site matrix leaves sites unreachable")
	}
	return g, gws, nil
}

// AttachSiteClients attaches per-site clients over the site LAN and returns
// the address list and a parallel site-index list.
func AttachSiteClients(g *Graph, gws []RouterID, perSite int, base overlay.Address, p SiteMatrixParams) ([]overlay.Address, []int) {
	p.setDefaults()
	var addrs []overlay.Address
	var sites []int
	access := AccessLink{Latency: p.LANLatency, Bandwidth: p.LANBandwidth, QueueBytes: p.QueueBytes}
	next := base
	for s, gw := range gws {
		for i := 0; i < perSite; i++ {
			g.AttachClient(next, gw, access)
			addrs = append(addrs, next)
			sites = append(sites, s)
			next++
		}
	}
	return addrs, sites
}
