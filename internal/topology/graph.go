// Package topology models the router-level network topologies MACEDON
// experiments run over, replacing the paper's 20,000-node INET graphs and
// ModelNet topology files. It provides a weighted graph of routers and
// client (edge) vertices, generators (INET-style power-law preferential
// attachment, transit-stub, explicit site matrices), and shortest-path
// routing with per-source tree caching — the "ModelNet routing and topology
// information" the paper's evaluation tools extract.
package topology

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"macedon/internal/overlay"
)

// RouterID names a vertex in the topology. Client vertices are routers too:
// a client is a stub vertex with a single access link, exactly how ModelNet
// attaches edge nodes.
type RouterID int32

// NilRouter is the invalid vertex.
const NilRouter RouterID = -1

// LinkID names a directed link. An undirected cable is a pair of LinkIDs.
type LinkID int32

// NilLink is the invalid link.
const NilLink LinkID = -1

// Link is one direction of a network pipe with the three ModelNet pipe
// parameters: propagation latency, bandwidth, and drop-tail queue capacity.
type Link struct {
	ID         LinkID
	From, To   RouterID
	Latency    time.Duration
	Bandwidth  int64 // bits per second
	QueueBytes int   // drop-tail queue capacity in bytes
}

type halfEdge struct {
	to   RouterID
	link LinkID
}

// Graph is a directed multigraph of routers and links. Construct with
// NewGraph and the Add methods; it is immutable once routing begins.
type Graph struct {
	adj   [][]halfEdge
	links []Link

	clients      map[overlay.Address]RouterID
	clientOrder  []overlay.Address
	clientVertex map[RouterID]overlay.Address
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		clients:      make(map[overlay.Address]RouterID),
		clientVertex: make(map[RouterID]overlay.Address),
	}
}

// AddRouter adds a vertex and returns its id.
func (g *Graph) AddRouter() RouterID {
	id := RouterID(len(g.adj))
	g.adj = append(g.adj, nil)
	return id
}

// NumRouters returns the number of vertices, clients included.
func (g *Graph) NumRouters() int { return len(g.adj) }

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the link with the given id.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns all directed links. The returned slice is the graph's own;
// callers must not modify it.
func (g *Graph) Links() []Link { return g.links }

// Degree returns the out-degree of a vertex.
func (g *Graph) Degree(r RouterID) int { return len(g.adj[r]) }

// Neighbors returns the vertices adjacent to r.
func (g *Graph) Neighbors(r RouterID) []RouterID {
	out := make([]RouterID, len(g.adj[r]))
	for i, e := range g.adj[r] {
		out[i] = e.to
	}
	return out
}

// AddLink adds a bidirectional pipe between a and b and returns the two
// directed link ids (a→b, b→a).
func (g *Graph) AddLink(a, b RouterID, latency time.Duration, bandwidth int64, queueBytes int) (LinkID, LinkID) {
	if a == b {
		panic("topology: self link")
	}
	fwd := g.addDirected(a, b, latency, bandwidth, queueBytes)
	rev := g.addDirected(b, a, latency, bandwidth, queueBytes)
	return fwd, rev
}

func (g *Graph) addDirected(a, b RouterID, latency time.Duration, bandwidth int64, queueBytes int) LinkID {
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: a, To: b, Latency: latency, Bandwidth: bandwidth, QueueBytes: queueBytes})
	g.adj[a] = append(g.adj[a], halfEdge{to: b, link: id})
	return id
}

// AccessLink describes the last-mile pipe used when attaching clients.
type AccessLink struct {
	Latency    time.Duration
	Bandwidth  int64
	QueueBytes int
}

// DefaultAccess is a 10 Mbps, 1 ms access pipe with a 64 KiB queue — enough
// headroom for the paper's 600 Kbps streams while still being the slowest
// hop, as stub access links are in the INET experiments.
var DefaultAccess = AccessLink{Latency: time.Millisecond, Bandwidth: 10_000_000, QueueBytes: 64 << 10}

// AttachClient creates a client vertex for addr, wired to the given router
// over the access pipe, and returns the client's vertex id. Attaching the
// same address twice panics: experiment setup bugs should fail loudly.
func (g *Graph) AttachClient(addr overlay.Address, at RouterID, access AccessLink) RouterID {
	if addr == overlay.NilAddress {
		panic("topology: cannot attach the nil address")
	}
	if _, dup := g.clients[addr]; dup {
		panic(fmt.Sprintf("topology: client %v attached twice", addr))
	}
	v := g.AddRouter()
	g.AddLink(v, at, access.Latency, access.Bandwidth, access.QueueBytes)
	g.clients[addr] = v
	g.clientOrder = append(g.clientOrder, addr)
	g.clientVertex[v] = addr
	return v
}

// AccessLinks returns the directed access links of a client: up carries
// traffic from the client into the network, down the reverse. ok is false
// when the address is not attached.
func (g *Graph) AccessLinks(addr overlay.Address) (up, down LinkID, ok bool) {
	v, attached := g.clients[addr]
	if !attached || len(g.adj[v]) == 0 {
		return NilLink, NilLink, false
	}
	up = g.adj[v][0].link
	return up, up ^ 1, true
}

// ClientVertex returns the vertex a client address is attached at.
func (g *Graph) ClientVertex(addr overlay.Address) (RouterID, bool) {
	v, ok := g.clients[addr]
	return v, ok
}

// ClientAt returns the client address attached at a vertex, if any.
func (g *Graph) ClientAt(v RouterID) (overlay.Address, bool) {
	a, ok := g.clientVertex[v]
	return a, ok
}

// Clients returns attached client addresses in attachment order.
func (g *Graph) Clients() []overlay.Address {
	return append([]overlay.Address(nil), g.clientOrder...)
}

// IsConnected reports whether every vertex is reachable from vertex 0.
func (g *Graph) IsConnected() bool {
	if len(g.adj) == 0 {
		return true
	}
	seen := make([]bool, len(g.adj))
	stack := []RouterID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == len(g.adj)
}

// spt is a shortest-path tree rooted at a destination: prev[v] is the link
// taken *out of* v on the shortest path toward the root.
type spt struct {
	prev []LinkID
	dist []time.Duration
}

// Routes answers path and latency queries over a finished graph, caching one
// shortest-path tree per queried destination. Latency is the routing metric,
// as in ModelNet topology routing.
//
// Routes is safe for concurrent use: a sharded simnet queries one oracle
// from every shard. Results are pure functions of the graph and the blocked
// predicate, so concurrency (and tree eviction) never changes an answer.
type Routes struct {
	g       *Graph
	blocked func(LinkID) bool // nil = every link usable

	mu     sync.Mutex
	trees  map[RouterID]*spt
	order  []RouterID // insertion order, for tree-budget eviction
	budget int        // max cached trees; <= 0 = unbounded
}

// NewRoutes returns a route oracle for g. The graph must not change
// afterwards.
func NewRoutes(g *Graph) *Routes {
	return &Routes{g: g, trees: make(map[RouterID]*spt)}
}

// SetTreeBudget bounds the number of cached shortest-path trees. Each tree
// costs O(vertices) memory, and a large experiment can query thousands of
// destinations, so unbounded caching is the dominant memory term of the
// ROADMAP's "Routes tree cache" item. When the budget is exceeded the
// oldest tree is recomputed on next use (results are unaffected). n <= 0
// removes the bound.
func (r *Routes) SetTreeBudget(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.budget = n
}

// CachedTrees returns how many shortest-path trees are currently retained.
func (r *Routes) CachedTrees() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.trees)
}

// NewRoutesExcluding returns a route oracle that routes around links for
// which blocked returns true — the oracle a ModelNet core would rebuild
// after a link failure. The blocked predicate is consulted only while
// computing trees, so callers must construct a fresh oracle whenever the
// failed-link set changes (simnet does exactly that to invalidate its path
// cache).
func NewRoutesExcluding(g *Graph, blocked func(LinkID) bool) *Routes {
	return &Routes{g: g, trees: make(map[RouterID]*spt), blocked: blocked}
}

type pqItem struct {
	v    RouterID
	dist time.Duration
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// tree returns the cached shortest-path tree toward dst, computing it on a
// miss. The computation runs outside the lock (two shards racing on the
// same destination just do the work twice — the trees are identical); a
// finished tree is immutable, so holders may keep using one the budget
// evicts.
func (r *Routes) tree(dst RouterID) *spt {
	r.mu.Lock()
	if t, ok := r.trees[dst]; ok {
		r.mu.Unlock()
		return t
	}
	r.mu.Unlock()
	t := r.computeTree(dst)
	r.mu.Lock()
	defer r.mu.Unlock()
	if exist, ok := r.trees[dst]; ok {
		return exist
	}
	r.trees[dst] = t
	r.order = append(r.order, dst)
	if r.budget > 0 && len(r.trees) > r.budget {
		old := r.order[0]
		r.order = r.order[1:]
		delete(r.trees, old)
	}
	return t
}

// computeTree runs Dijkstra toward dst. Because every link is one half of a
// symmetric pair, Dijkstra from dst over out-links yields correct paths
// toward dst.
func (r *Routes) computeTree(dst RouterID) *spt {
	n := r.g.NumRouters()
	t := &spt{prev: make([]LinkID, n), dist: make([]time.Duration, n)}
	const inf = time.Duration(1<<63 - 1)
	for i := range t.prev {
		t.prev[i] = NilLink
		t.dist[i] = inf
	}
	t.dist[dst] = 0
	q := pq{{v: dst, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if it.dist > t.dist[it.v] {
			continue
		}
		for _, e := range r.g.adj[it.v] {
			// e goes it.v→e.to; the reverse direction is the same pipe, so
			// walking out-edges from dst explores paths *to* dst. The link
			// traffic would actually traverse is e.link's partner: that is
			// the one the blocked predicate must veto.
			if r.blocked != nil && r.blocked(r.partner(e.link)) {
				continue
			}
			nd := it.dist + r.g.links[e.link].Latency
			if nd < t.dist[e.to] {
				t.dist[e.to] = nd
				// Out of e.to, the link toward it.v is e.link's partner.
				t.prev[e.to] = r.partner(e.link)
				heap.Push(&q, pqItem{v: e.to, dist: nd})
			}
		}
	}
	return t
}

// partner returns the reverse direction of a link. AddLink always appends
// the two directions adjacently, so the partner differs in the low bit.
func (r *Routes) partner(l LinkID) LinkID { return l ^ 1 }

// access returns a degree-1 client vertex's single out-link and attachment
// router. ok is false for core routers (and for any multi-homed client),
// which keep the plain tree lookup.
func (r *Routes) access(v RouterID) (up LinkID, router RouterID, ok bool) {
	if _, isClient := r.g.clientVertex[v]; !isClient || len(r.g.adj[v]) != 1 {
		return NilLink, NilRouter, false
	}
	e := r.g.adj[v][0]
	return e.link, e.to, true
}

// endpoints decomposes a (src, dst) query around degree-1 client endpoints:
// every path out of such a client starts on its uplink and every path into
// one ends on its downlink, so the oracle only ever needs shortest-path
// trees toward CORE routers. This is the memory wall of very large
// populations: one tree per client destination is O(clients × vertices),
// one per core router is bounded by the (much smaller) router count.
// ok is false when a required access link is blocked — the query answer is
// then "unreachable", exactly what the full-graph tree would have said.
func (r *Routes) endpoints(src, dst RouterID) (coreSrc, coreDst RouterID, up, down LinkID, ok bool) {
	coreSrc, coreDst, up, down = src, dst, NilLink, NilLink
	if l, rt, isAccess := r.access(src); isAccess {
		if r.blocked != nil && r.blocked(l) {
			return 0, 0, NilLink, NilLink, false
		}
		up, coreSrc = l, rt
	}
	if l, rt, isAccess := r.access(dst); isAccess {
		d := r.partner(l) // l leaves dst; traffic enters over the partner
		if r.blocked != nil && r.blocked(d) {
			return 0, 0, NilLink, NilLink, false
		}
		down, coreDst = d, rt
	}
	return coreSrc, coreDst, up, down, true
}

// Path returns the directed links from src to dst, in traversal order, or
// nil if unreachable (or src == dst).
func (r *Routes) Path(src, dst RouterID) []LinkID {
	if src == dst {
		return nil
	}
	coreSrc, coreDst, up, down, ok := r.endpoints(src, dst)
	if !ok {
		return nil
	}
	if coreSrc == coreDst {
		// Same attachment router (or one endpoint is the other's router):
		// the path is just the access hops.
		path := make([]LinkID, 0, 2)
		if up != NilLink {
			path = append(path, up)
		}
		if down != NilLink {
			path = append(path, down)
		}
		return path
	}
	t := r.tree(coreDst)
	if t.prev[coreSrc] == NilLink {
		return nil
	}
	var path []LinkID
	if up != NilLink {
		path = append(path, up)
	}
	v := coreSrc
	for v != coreDst {
		l := t.prev[v]
		if l == NilLink {
			return nil
		}
		path = append(path, l)
		v = r.g.links[l].To
	}
	if down != NilLink {
		path = append(path, down)
	}
	return path
}

// Latency returns the propagation latency of the shortest path src→dst, or
// a negative duration if unreachable.
func (r *Routes) Latency(src, dst RouterID) time.Duration {
	if src == dst {
		return 0
	}
	coreSrc, coreDst, up, down, ok := r.endpoints(src, dst)
	if !ok {
		return -1
	}
	var d time.Duration
	if up != NilLink {
		d += r.g.links[up].Latency
	}
	if down != NilLink {
		d += r.g.links[down].Latency
	}
	if coreSrc == coreDst {
		return d
	}
	t := r.tree(coreDst)
	const inf = time.Duration(1<<63 - 1)
	if t.dist[coreSrc] == inf {
		return -1
	}
	return d + t.dist[coreSrc]
}

// ClientLatency returns the one-way propagation latency between two client
// addresses: the "direct IP" latency that stretch and RDP metrics divide by.
func (r *Routes) ClientLatency(a, b overlay.Address) (time.Duration, error) {
	va, ok := r.g.ClientVertex(a)
	if !ok {
		return 0, fmt.Errorf("topology: client %v not attached", a)
	}
	vb, ok := r.g.ClientVertex(b)
	if !ok {
		return 0, fmt.Errorf("topology: client %v not attached", b)
	}
	d := r.Latency(va, vb)
	if d < 0 {
		return 0, fmt.Errorf("topology: clients %v and %v are disconnected", a, b)
	}
	return d, nil
}
