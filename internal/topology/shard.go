package topology

import "time"

// MinCrossShardLatency returns the smallest propagation latency of any link
// whose endpoints are owned by different shards under the given assignment.
// This is the conservative lookahead of a sharded discrete-event run over
// the graph: no interaction between two shards can take effect sooner than
// one cross-shard link traversal, so shards may safely run that far ahead
// of each other. ok is false when no link crosses shards.
func MinCrossShardLatency(g *Graph, shardOf func(RouterID) int) (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, l := range g.Links() {
		if shardOf(l.From) == shardOf(l.To) {
			continue
		}
		if !found || l.Latency < min {
			min, found = l.Latency, true
		}
	}
	return min, found
}
