package topology

import (
	"sort"
	"time"
)

// MinCrossShardLatency returns the smallest propagation latency of any link
// whose endpoints are owned by different shards under the given assignment.
// This is the conservative lookahead of a sharded discrete-event run over
// the graph: no interaction between two shards can take effect sooner than
// one cross-shard link traversal, so shards may safely run that far ahead
// of each other. ok is false when no link crosses shards.
func MinCrossShardLatency(g *Graph, shardOf func(RouterID) int) (time.Duration, bool) {
	var min time.Duration
	found := false
	for _, l := range g.Links() {
		if shardOf(l.From) == shardOf(l.To) {
			continue
		}
		if !found || l.Latency < min {
			min, found = l.Latency, true
		}
	}
	return min, found
}

// PartitionStriped assigns vertex v to shard v % nshards. Balanced and
// placement-oblivious: with short access links scattered across shards the
// lookahead collapses to the global minimum link latency.
func PartitionStriped(g *Graph, nshards int) []int32 {
	if nshards < 1 {
		nshards = 1
	}
	assign := make([]int32, g.NumRouters())
	for v := range assign {
		assign[v] = int32(v % nshards)
	}
	return assign
}

// PartitionLatency clusters the graph so its lowest-latency links become
// intra-shard, widening the conservative lookahead window (the minimum
// CROSS-shard latency). The construction is a capacity-bounded Kruskal
// sweep: undirected pipes in ascending (latency, id) order merge their
// endpoint clusters whenever the merged cluster still fits the per-shard
// capacity ceil(n/nshards); the resulting components are then bin-packed
// onto shards largest-first, each onto the least-loaded shard.
//
// The assignment is a pure function of the graph and nshards — ties break
// on link id, component size, smallest member, and shard id — so the same
// seed and topology always shard identically. Placement never changes
// results (execution order is keyed independently of shards); it changes
// only how far shards may run ahead of each other between barriers.
func PartitionLatency(g *Graph, nshards int) []int32 {
	n := g.NumRouters()
	assign := make([]int32, n)
	if nshards < 1 {
		nshards = 1
	}
	if nshards == 1 || n == 0 {
		return assign
	}
	capacity := (n + nshards - 1) / nshards

	// Union-find over vertices, merging along cheap pipes first. Links are
	// created in fwd/rev pairs (rev = fwd^1), so even ids enumerate each
	// undirected pipe exactly once.
	parent := make([]int32, n)
	size := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
		size[v] = 1
	}
	var find func(int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]] // path halving
			v = parent[v]
		}
		return v
	}
	links := g.Links()
	pipes := make([]LinkID, 0, len(links)/2)
	for id := 0; id < len(links); id += 2 {
		pipes = append(pipes, LinkID(id))
	}
	sort.Slice(pipes, func(i, j int) bool {
		a, b := links[pipes[i]], links[pipes[j]]
		if a.Latency != b.Latency {
			return a.Latency < b.Latency
		}
		return pipes[i] < pipes[j]
	})
	for _, id := range pipes {
		l := links[id]
		ra, rb := find(int32(l.From)), find(int32(l.To))
		if ra == rb || size[ra]+size[rb] > int32(capacity) {
			continue
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}

	// Bin-pack components onto shards: largest first (ties break on the
	// smallest member vertex), each onto the currently least-loaded shard
	// (ties on the lowest shard id).
	members := make(map[int32][]int32, nshards*2)
	for v := int32(0); v < int32(n); v++ {
		r := find(v)
		members[r] = append(members[r], v) // ascending: v increases
	}
	roots := make([]int32, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := members[roots[i]], members[roots[j]]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		return a[0] < b[0]
	})
	load := make([]int, nshards)
	for _, r := range roots {
		best := 0
		for s := 1; s < nshards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		for _, v := range members[r] {
			assign[v] = int32(best)
		}
		load[best] += len(members[r])
	}
	return assign
}
