package topology

import (
	"testing"
	"time"
)

// cliqueGraph builds groups of size `size` with cheap intra-group pipes and
// an expensive ring joining the groups: the shape latency partitioning is
// meant to exploit.
func cliqueGraph(groups, size int, intra, inter time.Duration) *Graph {
	g := NewGraph()
	for i := 0; i < groups*size; i++ {
		g.AddRouter()
	}
	for grp := 0; grp < groups; grp++ {
		base := RouterID(grp * size)
		for a := 0; a < size; a++ {
			for b := a + 1; b < size; b++ {
				g.AddLink(base+RouterID(a), base+RouterID(b), intra, 1e8, 1<<16)
			}
		}
	}
	for grp := 0; grp < groups; grp++ {
		a := RouterID(grp * size)
		b := RouterID(((grp + 1) % groups) * size)
		g.AddLink(a, b, inter, 1e8, 1<<16)
	}
	return g
}

// TestPartitionLatencyDeterministic: the assignment is a pure function of
// the graph and the shard count — two builds of the same topology shard
// identically, which is what lets a latency-partitioned run reproduce the
// golden corpus.
func TestPartitionLatencyDeterministic(t *testing.T) {
	build := func() *Graph {
		g, err := INET(DefaultINET(120, 9))
		if err != nil {
			t.Fatal(err)
		}
		AttachClients(g, 30, 1, DefaultAccess, 10)
		return g
	}
	for _, shards := range []int{2, 4, 16} {
		a := PartitionLatency(build(), shards)
		b := PartitionLatency(build(), shards)
		if len(a) != len(b) {
			t.Fatalf("shards=%d: assignment lengths differ", shards)
		}
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("shards=%d: vertex %d assigned to %d then %d", shards, v, a[v], b[v])
			}
			if a[v] < 0 || int(a[v]) >= shards {
				t.Fatalf("shards=%d: vertex %d assigned out of range: %d", shards, v, a[v])
			}
		}
	}
}

// TestPartitionLatencyWidensLookahead: on a clustered topology the latency
// partitioner keeps each cheap clique on one shard, so only the expensive
// inter-group links cross shards and the conservative lookahead jumps from
// the global minimum latency to the inter-group latency.
func TestPartitionLatencyWidensLookahead(t *testing.T) {
	const intra, inter = time.Millisecond, 50 * time.Millisecond
	g := cliqueGraph(4, 4, intra, inter)

	striped := PartitionStriped(g, 4)
	sw, ok := MinCrossShardLatency(g, func(v RouterID) int { return int(striped[v]) })
	if !ok || sw != intra {
		t.Fatalf("striped lookahead: got %v ok=%v, want %v (cheap links cross shards)", sw, ok, intra)
	}

	lat := PartitionLatency(g, 4)
	for grp := 0; grp < 4; grp++ {
		for m := 1; m < 4; m++ {
			if lat[grp*4+m] != lat[grp*4] {
				t.Fatalf("group %d split across shards: %v", grp, lat)
			}
		}
	}
	lw, ok := MinCrossShardLatency(g, func(v RouterID) int { return int(lat[v]) })
	if !ok || lw != inter {
		t.Fatalf("latency lookahead: got %v ok=%v, want %v (only ring links cross)", lw, ok, inter)
	}
}

// TestPartitionLatencyBalance: the capacity bound keeps the assignment
// usable as a parallel work partition — no shard holds more than twice the
// ideal share even on an irregular graph, and striped stays exact.
func TestPartitionLatencyBalance(t *testing.T) {
	g, err := INET(DefaultINET(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	AttachClients(g, 60, 1, DefaultAccess, 4)
	n := g.NumRouters()
	for _, shards := range []int{2, 4, 8} {
		assign := PartitionLatency(g, shards)
		load := make([]int, shards)
		for _, s := range assign {
			load[s]++
		}
		capacity := (n + shards - 1) / shards
		for s, l := range load {
			if l > 2*capacity {
				t.Fatalf("shards=%d: shard %d holds %d vertices (capacity %d)", shards, s, l, capacity)
			}
		}
	}
}
