package topology

import (
	"testing"
	"time"

	"macedon/internal/overlay"
)

func line3() (*Graph, []RouterID) {
	// 0 --1ms-- 1 --2ms-- 2
	g := NewGraph()
	a, b, c := g.AddRouter(), g.AddRouter(), g.AddRouter()
	g.AddLink(a, b, time.Millisecond, 1e6, 1500)
	g.AddLink(b, c, 2*time.Millisecond, 1e6, 1500)
	return g, []RouterID{a, b, c}
}

func TestGraphBasics(t *testing.T) {
	g, v := line3()
	if g.NumRouters() != 3 || g.NumLinks() != 4 {
		t.Fatalf("routers=%d links=%d", g.NumRouters(), g.NumLinks())
	}
	if g.Degree(v[1]) != 2 {
		t.Fatalf("degree of middle = %d", g.Degree(v[1]))
	}
	if !g.IsConnected() {
		t.Fatal("line should be connected")
	}
	g.AddRouter() // isolated
	if g.IsConnected() {
		t.Fatal("isolated vertex should disconnect")
	}
}

func TestRoutesPathAndLatency(t *testing.T) {
	g, v := line3()
	r := NewRoutes(g)
	if d := r.Latency(v[0], v[2]); d != 3*time.Millisecond {
		t.Fatalf("latency = %v", d)
	}
	path := r.Path(v[0], v[2])
	if len(path) != 2 {
		t.Fatalf("path = %v", path)
	}
	if g.Link(path[0]).From != v[0] || g.Link(path[1]).To != v[2] {
		t.Fatalf("path endpoints wrong: %+v %+v", g.Link(path[0]), g.Link(path[1]))
	}
	if r.Path(v[0], v[0]) != nil {
		t.Fatal("self path should be nil")
	}
	if d := r.Latency(v[0], v[0]); d != 0 {
		t.Fatalf("self latency = %v", d)
	}
}

func TestRoutesPicksShorterPath(t *testing.T) {
	// triangle with a slow direct edge and a fast two-hop detour
	g := NewGraph()
	a, b, c := g.AddRouter(), g.AddRouter(), g.AddRouter()
	g.AddLink(a, c, 10*time.Millisecond, 1e6, 1500)
	g.AddLink(a, b, 2*time.Millisecond, 1e6, 1500)
	g.AddLink(b, c, 2*time.Millisecond, 1e6, 1500)
	r := NewRoutes(g)
	if d := r.Latency(a, c); d != 4*time.Millisecond {
		t.Fatalf("latency = %v, want 4ms via detour", d)
	}
	if p := r.Path(a, c); len(p) != 2 {
		t.Fatalf("path = %v, want 2 hops", p)
	}
}

func TestRoutesUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.AddRouter()
	b := g.AddRouter()
	r := NewRoutes(g)
	if p := r.Path(a, b); p != nil {
		t.Fatalf("path across partition = %v", p)
	}
	if d := r.Latency(a, b); d >= 0 {
		t.Fatalf("latency across partition = %v", d)
	}
}

func TestClients(t *testing.T) {
	g, v := line3()
	g.AttachClient(100, v[0], DefaultAccess)
	g.AttachClient(101, v[2], DefaultAccess)
	r := NewRoutes(g)
	d, err := r.ClientLatency(100, 101)
	if err != nil {
		t.Fatal(err)
	}
	// 1ms access + 3ms across + 1ms access
	if d != 5*time.Millisecond {
		t.Fatalf("client latency = %v", d)
	}
	if _, err := r.ClientLatency(100, 999); err == nil {
		t.Fatal("unattached client should error")
	}
	cs := g.Clients()
	if len(cs) != 2 || cs[0] != 100 {
		t.Fatalf("Clients = %v", cs)
	}
	cv, ok := g.ClientVertex(101)
	if !ok {
		t.Fatal("lost client vertex")
	}
	if a, ok := g.ClientAt(cv); !ok || a != 101 {
		t.Fatalf("ClientAt = %v,%v", a, ok)
	}
}

func TestAttachClientPanics(t *testing.T) {
	g, v := line3()
	g.AttachClient(100, v[0], DefaultAccess)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach should panic")
		}
	}()
	g.AttachClient(100, v[1], DefaultAccess)
}

func TestINETGeneration(t *testing.T) {
	p := DefaultINET(200, 42)
	g, err := INET(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRouters() != 200 {
		t.Fatalf("routers = %d", g.NumRouters())
	}
	if !g.IsConnected() {
		t.Fatal("INET graph must be connected")
	}
	// Power-law-ish: max degree should dwarf the median.
	maxDeg, sum := 0, 0
	for i := 0; i < g.NumRouters(); i++ {
		d := g.Degree(RouterID(i))
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(g.NumRouters())
	if float64(maxDeg) < 3*mean {
		t.Fatalf("no hubs: max degree %d vs mean %.1f", maxDeg, mean)
	}
}

func TestINETDeterminism(t *testing.T) {
	a, err := INET(DefaultINET(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := INET(DefaultINET(100, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Fatalf("same seed, different link counts: %d vs %d", a.NumLinks(), b.NumLinks())
	}
	for i := range a.Links() {
		la, lb := a.Links()[i], b.Links()[i]
		if la != lb {
			t.Fatalf("link %d differs: %+v vs %+v", i, la, lb)
		}
	}
}

func TestINETTooSmall(t *testing.T) {
	if _, err := INET(DefaultINET(2, 1)); err == nil {
		t.Fatal("tiny INET should be rejected")
	}
}

func TestStubRoutersExcludeClients(t *testing.T) {
	g, err := INET(DefaultINET(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	addrs := AttachClients(g, 10, 1000, DefaultAccess, 3)
	if len(addrs) != 10 {
		t.Fatalf("attached %d", len(addrs))
	}
	for _, s := range StubRouters(g) {
		if _, isClient := g.ClientAt(s); isClient {
			t.Fatal("client vertex returned as stub router")
		}
	}
}

func TestTransitStub(t *testing.T) {
	g, err := TransitStub(DefaultTransitStub(5))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("transit-stub must be connected")
	}
	want := 2*4 + 2*4*3*4 // transit routers + stub routers
	if g.NumRouters() != want {
		t.Fatalf("routers = %d, want %d", g.NumRouters(), want)
	}
}

func TestSiteMatrix(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	p := SiteMatrixParams{
		Latency: [][]time.Duration{
			{0, ms(10), ms(20)},
			{ms(10), 0, ms(15)},
			{ms(20), ms(15), 0},
		},
	}
	g, gws, err := SiteMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(gws) != 3 {
		t.Fatalf("gateways = %d", len(gws))
	}
	addrs, sites := AttachSiteClients(g, gws, 2, 1, p)
	if len(addrs) != 6 || sites[0] != 0 || sites[5] != 2 {
		t.Fatalf("addrs=%v sites=%v", addrs, sites)
	}
	r := NewRoutes(g)
	d, err := r.ClientLatency(addrs[0], addrs[2])
	if err != nil {
		t.Fatal(err)
	}
	// 1ms LAN + 10ms WAN + 1ms LAN
	if d != 12*time.Millisecond {
		t.Fatalf("cross-site latency = %v", d)
	}
	d, err = r.ClientLatency(addrs[0], addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if d != 2*time.Millisecond { // same site: two LAN hops
		t.Fatalf("same-site latency = %v", d)
	}
}

func TestSiteMatrixErrors(t *testing.T) {
	if _, _, err := SiteMatrix(SiteMatrixParams{}); err == nil {
		t.Fatal("empty matrix should fail")
	}
	if _, _, err := SiteMatrix(SiteMatrixParams{Latency: [][]time.Duration{{0, time.Millisecond}}}); err == nil {
		t.Fatal("non-square matrix should fail")
	}
	// disconnected: zero latency means no link
	p := SiteMatrixParams{Latency: [][]time.Duration{{0, 0}, {0, 0}}}
	if _, _, err := SiteMatrix(p); err == nil {
		t.Fatal("disconnected sites should fail")
	}
}

var _ = overlay.NilAddress // keep the import pinned for doc examples
