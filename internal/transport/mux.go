// Package transport implements the MACEDON transport subsystem of §3.1:
// named transport instances multiplexed over one datagram endpoint, in the
// three disciplines the language offers — TCP (reliable, in-order,
// congestion-friendly), SWP (reliable, in-order, congestion-unfriendly
// sliding window), and UDP (unreliable). A protocol binds each message type
// to a transport instance; defining several instances of the same kind gives
// the per-priority channels the paper uses to defeat head-of-line blocking.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"macedon/internal/overlay"
	"macedon/internal/substrate"
)

// MaxFrame is the largest message frame a transport accepts (reliable
// transports segment it; UDP fragments it).
const MaxFrame = 4 << 20

// Errors returned by transports.
var (
	ErrFrameTooLarge   = errors.New("transport: frame exceeds MaxFrame")
	ErrUnknownTranport = errors.New("transport: unknown transport name")
	ErrQueueFull       = errors.New("transport: connection send queue full")
)

// RecvFunc receives a reassembled frame from a peer on a named transport.
type RecvFunc func(transport string, src overlay.Address, frame []byte)

// Stats counts per-transport activity.
type Stats struct {
	FramesSent     uint64
	FramesRecv     uint64
	BytesSent      uint64 // frame payload bytes accepted for sending
	BytesRecv      uint64
	Segments       uint64 // datagrams emitted, acks excluded
	Retransmits    uint64
	AcksSent       uint64
	FragsDropped   uint64 // UDP reassembly drops
	SegmentsQueued uint64 // currently buffered unacked/unsent bytes (gauge)
}

// Transport is one named channel to every peer.
type Transport interface {
	// Name returns the instance name from the specification, e.g. "HIGHEST".
	Name() string
	// Kind returns the transport discipline.
	Kind() overlay.TransportKind
	// Send queues one frame toward dst. Reliable kinds deliver it exactly
	// once and in order relative to other frames on the same instance; UDP
	// delivers it at most once.
	Send(dst overlay.Address, frame []byte) error
	// QueuedBytes reports bytes buffered toward dst (unsent plus unacked):
	// the observable form of the paper's "blocked transport" condition.
	QueuedBytes(dst overlay.Address) int
	// Stats returns a snapshot of the instance's counters.
	Stats() Stats
}

// Mux owns the endpoint and demultiplexes datagrams to transport instances.
// All methods are safe for concurrent use; under the simulator everything
// runs on the event goroutine and the lock is uncontended.
type Mux struct {
	mu    sync.Mutex
	ep    substrate.Endpoint
	clock substrate.Clock
	boot  uint64 // incarnation stamp carried by reliable segments

	transports []muxMember
	byName     map[string]uint8
	recv       RecvFunc
	closed     bool
}

type muxMember interface {
	Transport
	setID(id uint8)
	handle(src overlay.Address, kind uint8, body []byte)
}

// NewMux wires a mux onto an endpoint. The mux installs itself as the
// endpoint's receive handler.
//
// The mux stamps its boot time (full nanosecond clock reading at
// construction) onto every reliable segment: one mux is one incarnation of
// a node, and a peer that crashes and restarts builds a new mux whose
// byte-stream offsets restart at zero. Without the stamp, the surviving
// side would forever discard the new stream as duplicate data and ignore
// its acknowledgements as out of window — the reliable-transport
// equivalent of talking to a ghost. The stamp plays the role TCP's initial
// sequence numbers and RST play at connection establishment; nanosecond
// resolution makes collision between two incarnations impossible (the
// simulated clock is strictly later at any later event).
func NewMux(ep substrate.Endpoint, clock substrate.Clock) *Mux {
	m := &Mux{ep: ep, clock: clock, byName: make(map[string]uint8),
		boot: uint64(clock.Now().UnixNano())}
	ep.SetRecv(m.onDatagram)
	return m
}

// SetRecv installs the frame delivery callback. Frames arriving before a
// handler is installed are dropped.
func (m *Mux) SetRecv(fn RecvFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recv = fn
}

// Addr returns the local address.
func (m *Mux) Addr() overlay.Address { return m.ep.Addr() }

// Close tears down timers and silently drops further traffic.
func (m *Mux) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	for _, t := range m.transports {
		if r, ok := t.(*reliable); ok {
			r.stopTimers()
		}
	}
}

func (m *Mux) add(name string, t muxMember) Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("transport: instance %q defined twice", name))
	}
	if len(m.transports) >= 255 {
		panic("transport: too many transport instances")
	}
	id := uint8(len(m.transports))
	m.byName[name] = id
	m.transports = append(m.transports, t)
	t.setID(id)
	return t
}

// AddUDP creates an unreliable instance.
func (m *Mux) AddUDP(name string) Transport {
	return m.add(name, &udp{name: name, mux: m})
}

// AddTCP creates a reliable congestion-controlled instance.
func (m *Mux) AddTCP(name string) Transport {
	r := newReliable(name, m, true, 0)
	return m.add(name, r)
}

// AddSWP creates a reliable fixed-window instance. window is the sliding
// window in segments; zero selects the default of 16.
func (m *Mux) AddSWP(name string, window int) Transport {
	if window <= 0 {
		window = 16
	}
	r := newReliable(name, m, false, window)
	return m.add(name, r)
}

// ByName returns the named transport instance.
func (m *Mux) ByName(name string) (Transport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTranport, name)
	}
	return m.transports[id], nil
}

// Transports returns the instances in definition order.
func (m *Mux) Transports() []Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Transport, len(m.transports))
	for i, t := range m.transports {
		out[i] = t
	}
	return out
}

// onDatagram is the endpoint receive path: [tid u8][kind u8][body].
func (m *Mux) onDatagram(src overlay.Address, payload []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || len(payload) < 2 {
		return
	}
	tid := payload[0]
	if int(tid) >= len(m.transports) {
		return // stale or corrupt; drop like an unknown port
	}
	m.transports[tid].handle(src, payload[1], payload[2:])
}

// deliver hands a reassembled frame up. Caller holds m.mu.
func (m *Mux) deliver(tname string, src overlay.Address, frame []byte) {
	if m.recv == nil {
		return
	}
	fn := m.recv
	// Release the lock for the upcall: the engine may immediately send,
	// which re-enters the mux.
	m.mu.Unlock()
	fn(tname, src, frame)
	m.mu.Lock()
}

// emit sends one datagram with the transport header. Caller holds m.mu.
func (m *Mux) emit(tid uint8, kind uint8, dst overlay.Address, body []byte) error {
	if m.closed {
		return nil
	}
	buf := make([]byte, 0, 2+len(body))
	buf = append(buf, tid, kind)
	buf = append(buf, body...)
	return m.ep.Send(dst, buf)
}

// mss returns the usable segment payload size for the given header size.
func (m *Mux) mss(headerLen int) int { return m.ep.MTU() - 2 - headerLen }
