package transport

import (
	"encoding/binary"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/substrate"
)

// Reliable-transport tuning. The TCP discipline follows the classic Jacobson
// /Karels algorithms: slow start, AIMD congestion avoidance, fast retransmit
// on three duplicate ACKs, exponential RTO backoff with Karn's sampling
// rule. SWP keeps a fixed window and go-back-N recovery: reliable but
// congestion-unfriendly, as §3.1 defines it.
const (
	relHeaderLen = 20 // [boot u64][gen u32][offset u64]

	initialRTO = 1 * time.Second
	minRTO     = 100 * time.Millisecond
	maxRTO     = 60 * time.Second

	initialSSThresh = 64 << 10
	maxFlightCap    = 256 << 10 // receive-window surrogate
	sendQueueCap    = 8 << 20   // per-connection unsent+unacked cap
	oooCap          = 512 << 10 // out-of-order buffer cap per connection
)

// reliable implements both the TCP and SWP disciplines over datagrams.
type reliable struct {
	name  string
	id    uint8
	mux   *Mux
	tcp   bool // true: congestion-controlled; false: fixed-window SWP
	fixed int  // SWP window in segments

	conns map[overlay.Address]*conn
	stats Stats
}

type conn struct {
	t    *reliable
	peer overlay.Address

	// Sender half. buf holds the byte stream [sndUna, sndUna+len(buf)).
	sndUna, sndNxt uint64
	buf            []byte
	cwnd, ssthresh float64
	dupAcks        int

	rto          time.Duration
	srtt, rttvar time.Duration
	rtxTimer     substrate.Timer

	// NewReno fast-recovery state.
	inRecovery bool
	recover    uint64 // sndNxt when loss was detected

	// One RTT sample in flight (Karn's algorithm): never sample an offset
	// at or below rexmitHigh, the highest offset ever retransmitted.
	sampling   bool
	sampleOfs  uint64
	sampleAt   time.Time
	rexmitHigh uint64

	// Receiver half.
	rcvNxt   uint64
	rbuf     []byte
	ooo      map[uint64][]byte
	oooBytes int

	// Stream-incarnation tracking. localGen numbers this side's outgoing
	// byte stream on the connection: it bumps whenever the stream restarts
	// at offset zero mid-conversation (after detecting a peer reboot), so
	// the receiver can tell a fresh stream from stale retransmissions of a
	// dead one — the sender's boot alone cannot, because a surviving
	// node's boot never changes. (peerBoot, peerGen) is the newest stream
	// identity observed from the peer.
	localGen  uint32
	peerBoot  uint64
	peerGen   uint32
	peerKnown bool
}

// resetSend restarts the outgoing stream at offset zero. Frames buffered
// but unacknowledged are lost, exactly as a TCP RST would lose them;
// protocols recover through their own soft-state refresh.
func (c *conn) resetSend() {
	mss := float64(c.t.mss())
	c.sndUna, c.sndNxt = 0, 0
	c.buf = nil
	c.cwnd, c.ssthresh = 2*mss, initialSSThresh
	c.dupAcks = 0
	c.rto, c.srtt, c.rttvar = initialRTO, 0, 0
	c.inRecovery = false
	c.recover = 0
	c.sampling = false
	c.rexmitHigh = 0
	if c.rtxTimer != nil {
		c.rtxTimer.Stop()
		c.rtxTimer = nil
	}
}

// resetRecv discards all receive-side state, including out-of-order
// segments buffered from a dead peer stream — without this, stale
// retransmissions captured before the peer's stream reset would later be
// spliced into the fresh stream as garbage.
func (c *conn) resetRecv() {
	c.rcvNxt = 0
	c.rbuf = nil
	c.ooo = make(map[uint64][]byte)
	c.oooBytes = 0
}

// checkPeer validates an incoming (boot, gen) stream identity and reports
// whether the packet should be processed.
//
//   - A newer boot means the peer node rebooted: both halves reset and our
//     own stream restarts under a bumped generation (the reborn peer has no
//     memory of it).
//   - A newer generation under the same boot means the peer restarted just
//     its outgoing stream (it detected *our* reboot): only the receive half
//     resets. No generation bump — our stream is intact — which is what
//     keeps mutual resets from ping-ponging forever.
//   - An older identity is a relic of a dead incarnation and is dropped.
//
// Boot stamps are full nanosecond readings, strictly increasing across
// restarts; generations under one boot only ever increase, so plain
// comparisons suffice.
func (c *conn) checkPeer(boot uint64, gen uint32) bool {
	if !c.peerKnown {
		c.peerBoot, c.peerGen, c.peerKnown = boot, gen, true
		return true
	}
	if boot == c.peerBoot && gen == c.peerGen {
		return true
	}
	if boot > c.peerBoot {
		c.resetRecv()
		c.resetSend()
		c.localGen++
		c.peerBoot, c.peerGen = boot, gen
		return true
	}
	if boot == c.peerBoot && gen > c.peerGen {
		c.resetRecv()
		c.peerGen = gen
		return true
	}
	return false
}

func newReliable(name string, m *Mux, tcp bool, fixedWindow int) *reliable {
	return &reliable{name: name, mux: m, tcp: tcp, fixed: fixedWindow,
		conns: make(map[overlay.Address]*conn)}
}

func (r *reliable) Name() string { return r.name }
func (r *reliable) Kind() overlay.TransportKind {
	if r.tcp {
		return overlay.TCP
	}
	return overlay.SWP
}
func (r *reliable) setID(id uint8) { r.id = id }

func (r *reliable) Stats() Stats {
	r.mux.mu.Lock()
	defer r.mux.mu.Unlock()
	s := r.stats
	var queued uint64
	for _, c := range r.conns {
		queued += uint64(len(c.buf))
	}
	s.SegmentsQueued = queued
	return s
}

func (r *reliable) QueuedBytes(dst overlay.Address) int {
	r.mux.mu.Lock()
	defer r.mux.mu.Unlock()
	if c, ok := r.conns[dst]; ok {
		return len(c.buf)
	}
	return 0
}

func (r *reliable) conn(peer overlay.Address) *conn {
	c, ok := r.conns[peer]
	if !ok {
		mss := float64(r.mss())
		c = &conn{
			t: r, peer: peer,
			cwnd:     2 * mss,
			ssthresh: initialSSThresh,
			rto:      initialRTO,
			ooo:      make(map[uint64][]byte),
		}
		r.conns[peer] = c
	}
	return c
}

func (r *reliable) mss() int { return r.mux.mss(relHeaderLen) }

// Send frames the payload onto the connection's byte stream and pumps.
func (r *reliable) Send(dst overlay.Address, frame []byte) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooLarge
	}
	r.mux.mu.Lock()
	defer r.mux.mu.Unlock()
	c := r.conn(dst)
	if len(c.buf)+4+len(frame) > sendQueueCap {
		return ErrQueueFull
	}
	r.stats.FramesSent++
	r.stats.BytesSent += uint64(len(frame))
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	c.buf = append(c.buf, hdr[:]...)
	c.buf = append(c.buf, frame...)
	c.pump()
	return nil
}

// window returns the sender's permitted flight in bytes.
func (c *conn) window() int {
	if c.t.tcp {
		w := int(c.cwnd)
		if w > maxFlightCap {
			w = maxFlightCap
		}
		if w < c.t.mss() {
			w = c.t.mss()
		}
		return w
	}
	return c.t.fixed * c.t.mss()
}

// pump transmits as much unsent data as the window permits.
func (c *conn) pump() {
	mss := c.t.mss()
	for {
		flight := int(c.sndNxt - c.sndUna)
		avail := len(c.buf) - flight
		if avail <= 0 || flight >= c.window() {
			break
		}
		n := mss
		if n > avail {
			n = avail
		}
		if room := c.window() - flight; n > room {
			n = room
		}
		if n <= 0 {
			break
		}
		off := c.sndNxt
		c.sendSegment(off, c.buf[flight:flight+n])
		c.sndNxt += uint64(n)
		if !c.sampling && off >= c.rexmitHigh {
			c.sampling = true
			c.sampleOfs = off + uint64(n)
			c.sampleAt = c.t.mux.clock.Now()
		}
	}
	c.armTimer()
}

func (c *conn) sendSegment(offset uint64, payload []byte) {
	body := make([]byte, relHeaderLen+len(payload))
	binary.BigEndian.PutUint64(body[0:], c.t.mux.boot)
	binary.BigEndian.PutUint32(body[8:], c.localGen)
	binary.BigEndian.PutUint64(body[12:], offset)
	copy(body[relHeaderLen:], payload)
	c.t.stats.Segments++
	_ = c.t.mux.emit(c.t.id, kindRelData, c.peer, body)
}

func (c *conn) armTimer() {
	if c.sndNxt == c.sndUna {
		if c.rtxTimer != nil {
			c.rtxTimer.Stop()
			c.rtxTimer = nil
		}
		return
	}
	if c.rtxTimer != nil {
		return
	}
	c.rtxTimer = c.t.mux.clock.After(c.rto, func() { c.onTimeout() })
}

func (c *conn) resetTimer() {
	if c.rtxTimer != nil {
		c.rtxTimer.Stop()
		c.rtxTimer = nil
	}
	c.armTimer()
}

func (c *conn) onTimeout() {
	m := c.t.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	c.rtxTimer = nil
	flight := int(c.sndNxt - c.sndUna)
	if flight <= 0 {
		return
	}
	mss := c.t.mss()
	c.t.stats.Retransmits++
	c.sampling = false
	if c.rexmitHigh < c.sndNxt {
		c.rexmitHigh = c.sndNxt
	}
	if c.t.tcp {
		// Tahoe-style recovery: collapse the window, roll snd_nxt back, and
		// let slow start retransmit the flight; exponential RTO backoff.
		c.rto *= 2
		if c.rto > maxRTO {
			c.rto = maxRTO
		}
		c.ssthresh = float64(maxInt(flight/2, 2*mss))
		c.cwnd = float64(mss)
		c.inRecovery = false
		c.sndNxt = c.sndUna
		c.pump()
		return
	}
	// SWP go-back-N: retransmit the whole window and keep the timeout
	// constant — the protocol is reliable but deliberately does not back
	// off, which is what makes it congestion-unfriendly.
	for off := 0; off < flight; off += mss {
		n := minInt(mss, flight-off)
		c.sendSegment(c.sndUna+uint64(off), c.buf[off:off+n])
		if off > 0 {
			c.t.stats.Retransmits++
		}
	}
	c.armTimer()
}

func (r *reliable) handle(src overlay.Address, kind uint8, body []byte) {
	switch kind {
	case kindRelData:
		r.handleData(src, body)
	case kindRelAck:
		r.handleAck(src, body)
	}
}

func (r *reliable) handleData(src overlay.Address, body []byte) {
	if len(body) < relHeaderLen {
		return
	}
	boot := binary.BigEndian.Uint64(body[0:])
	gen := binary.BigEndian.Uint32(body[8:])
	offset := binary.BigEndian.Uint64(body[12:])
	seg := body[relHeaderLen:]
	c := r.conn(src)
	if !c.checkPeer(boot, gen) {
		return
	}

	if offset <= c.rcvNxt {
		// In-order (or partially duplicate) segment: take the new tail.
		if offset+uint64(len(seg)) > c.rcvNxt {
			c.rbuf = append(c.rbuf, seg[c.rcvNxt-offset:]...)
			c.rcvNxt = offset + uint64(len(seg))
			c.drainOOO()
		}
	} else if c.oooBytes+len(seg) <= oooCap {
		if _, dup := c.ooo[offset]; !dup {
			c.ooo[offset] = append([]byte(nil), seg...)
			c.oooBytes += len(seg)
		}
	}
	c.sendAck()
	c.parseFrames()
}

func (c *conn) drainOOO() {
	for {
		seg, ok := c.ooo[c.rcvNxt]
		if ok {
			delete(c.ooo, c.rcvNxt)
			c.oooBytes -= len(seg)
			c.rbuf = append(c.rbuf, seg...)
			c.rcvNxt += uint64(len(seg))
			continue
		}
		// Evict segments the cumulative point has passed (covered by a
		// larger retransmitted segment).
		advanced := false
		for off, seg := range c.ooo {
			if off < c.rcvNxt {
				delete(c.ooo, off)
				c.oooBytes -= len(seg)
				if off+uint64(len(seg)) > c.rcvNxt {
					c.rbuf = append(c.rbuf, seg[c.rcvNxt-off:]...)
					c.rcvNxt = off + uint64(len(seg))
					advanced = true
				}
			}
		}
		if !advanced {
			return
		}
	}
}

// sendAck acknowledges the peer's stream. Besides the acker's own stream
// identity, the ack echoes which peer stream incarnation the cumulative
// offset applies to, so a reborn sender can discard acknowledgements aimed
// at its previous life instead of mistaking them for window updates.
func (c *conn) sendAck() {
	var body [32]byte
	binary.BigEndian.PutUint64(body[0:], c.t.mux.boot)
	binary.BigEndian.PutUint32(body[8:], c.localGen)
	binary.BigEndian.PutUint64(body[12:], c.peerBoot)
	binary.BigEndian.PutUint32(body[20:], c.peerGen)
	binary.BigEndian.PutUint64(body[24:], c.rcvNxt)
	c.t.stats.AcksSent++
	_ = c.t.mux.emit(c.t.id, kindRelAck, c.peer, body[:])
}

// parseFrames extracts length-prefixed frames from the in-order stream and
// delivers them.
func (c *conn) parseFrames() {
	var frames [][]byte
	for {
		if len(c.rbuf) < 4 {
			break
		}
		n := int(binary.BigEndian.Uint32(c.rbuf[0:4]))
		if len(c.rbuf) < 4+n {
			break
		}
		frames = append(frames, c.rbuf[4:4+n])
		c.rbuf = c.rbuf[4+n:]
	}
	if len(c.rbuf) == 0 {
		c.rbuf = nil // release the backing array between bursts
	} else if len(frames) > 0 {
		// Move the partial tail to fresh storage so future appends cannot
		// clobber the frames just handed upward.
		c.rbuf = append([]byte(nil), c.rbuf...)
	}
	for _, f := range frames {
		c.t.stats.FramesRecv++
		c.t.stats.BytesRecv += uint64(len(f))
		c.t.mux.deliver(c.t.name, c.peer, f)
	}
}

func (r *reliable) handleAck(src overlay.Address, body []byte) {
	if len(body) < 32 {
		return
	}
	boot := binary.BigEndian.Uint64(body[0:])
	gen := binary.BigEndian.Uint32(body[8:])
	echoBoot := binary.BigEndian.Uint64(body[12:])
	echoGen := binary.BigEndian.Uint32(body[20:])
	cum := binary.BigEndian.Uint64(body[24:])
	c := r.conn(src)
	if !c.checkPeer(boot, gen) {
		return
	}
	if echoBoot != r.mux.boot || echoGen != c.localGen {
		return // acknowledges a dead incarnation of our stream
	}
	mss := float64(r.mss())
	switch {
	case cum > c.sndUna && cum <= c.sndNxt:
		acked := cum - c.sndUna
		c.buf = c.buf[acked:]
		c.sndUna = cum
		c.dupAcks = 0
		if c.sampling && cum >= c.sampleOfs {
			c.updateRTT(r.mux.clock.Now().Sub(c.sampleAt))
			c.sampling = false
		}
		if r.tcp {
			if c.inRecovery && cum < c.recover {
				// NewReno partial ACK: the next hole is now at snd_una;
				// retransmit it immediately rather than waiting out an RTO.
				if c.rexmitHigh < c.sndNxt {
					c.rexmitHigh = c.sndNxt
				}
				n := minInt(int(mss), int(c.sndNxt-c.sndUna))
				if n > 0 {
					r.stats.Retransmits++
					c.sendSegment(c.sndUna, c.buf[:n])
				}
			} else {
				c.inRecovery = false
				if c.cwnd < c.ssthresh {
					c.cwnd += float64(acked) // slow start
				} else {
					c.cwnd += mss * float64(acked) / c.cwnd // AIMD increase
				}
			}
		}
		c.resetTimer()
		c.pump()
	case cum == c.sndUna && c.sndNxt > c.sndUna:
		c.dupAcks++
		if r.tcp && c.dupAcks == 3 && !c.inRecovery {
			// Fast retransmit + NewReno fast recovery.
			flight := int(c.sndNxt - c.sndUna)
			c.ssthresh = float64(maxInt(flight/2, 2*int(mss)))
			c.cwnd = c.ssthresh
			c.inRecovery = true
			c.recover = c.sndNxt
			c.rexmitHigh = c.sndNxt
			c.sampling = false
			n := minInt(int(mss), flight)
			r.stats.Retransmits++
			c.sendSegment(c.sndUna, c.buf[:n])
		}
	}
}

func (c *conn) updateRTT(rtt time.Duration) {
	if rtt <= 0 {
		rtt = time.Millisecond
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		diff := c.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

func (r *reliable) stopTimers() {
	for _, c := range r.conns {
		if c.rtxTimer != nil {
			c.rtxTimer.Stop()
			c.rtxTimer = nil
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
