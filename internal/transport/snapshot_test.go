package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"macedon/internal/simnet"
	"macedon/internal/statecopy"
)

// TestReliableStateRewind proves a reliable transport's connection state —
// byte-stream offsets, congestion window, RTT estimators, retransmit timer,
// receive buffers — rewinds through a statecopy capture plus a scheduler
// snapshot: the checkpoint/fork contract every transport participates in
// (docs/sweeps.md). A TCP stream cut mid-flight at the capture must finish
// byte-identically in two branches.
func TestReliableStateRewind(t *testing.T) {
	r := newRig(t, simnet.Config{}, 1_000_000, 20*1500)
	defer r.sched.Close()
	r.a.AddTCP("t")
	r.b.AddTCP("t")
	var log recvLog
	r.b.SetRecv(log.fn())
	tr, err := r.a.ByName("t")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 120_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := tr.Send(2, payload); err != nil {
		t.Fatal(err)
	}
	// Run until the stream is mid-flight, then checkpoint everything.
	r.sched.RunFor(200 * time.Millisecond)
	if len(log.frames) != 0 {
		t.Fatal("stream finished before the checkpoint; slow the link")
	}
	cpSched := r.sched.Snapshot()
	cpNet := r.net.Snapshot()
	cpMux := statecopy.Capture(r.a, r.b)

	finish := func() (string, []byte) {
		log.frames = nil
		r.sched.RunFor(30 * time.Second)
		stats := tr.Stats()
		if len(log.frames) != 1 {
			t.Fatalf("stream did not complete: %d frames", len(log.frames))
		}
		return fmt.Sprintf("segs=%d rtx=%d acks=%d", stats.Segments, stats.Retransmits, stats.AcksSent), log.frames[0]
	}
	sumA, frameA := finish()
	r.sched.Restore(cpSched)
	r.net.Restore(cpNet)
	cpMux.Restore()
	sumB, frameB := finish()

	if !bytes.Equal(frameA, payload) || !bytes.Equal(frameB, payload) {
		t.Fatal("reassembled stream corrupt")
	}
	if sumA != sumB {
		t.Fatalf("transport counters diverge across branches: %s vs %s", sumA, sumB)
	}
}
