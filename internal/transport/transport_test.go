package transport

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"macedon/internal/overlay"
	"macedon/internal/simnet"
	"macedon/internal/topology"
)

// rig is a two-node emulated network with muxes on both ends.
type rig struct {
	sched *simnet.Scheduler
	net   *simnet.Network
	a, b  *Mux
}

func newRig(t *testing.T, cfg simnet.Config, midBW int64, midQueue int) *rig {
	t.Helper()
	g := topology.NewGraph()
	r1, r2 := g.AddRouter(), g.AddRouter()
	g.AddLink(r1, r2, 5*time.Millisecond, midBW, midQueue)
	g.AttachClient(1, r1, topology.DefaultAccess)
	g.AttachClient(2, r2, topology.DefaultAccess)
	s := simnet.NewScheduler(99)
	n := simnet.New(s, g, cfg)
	epa, err := n.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	epb, _ := n.Endpoint(2)
	return &rig{sched: s, net: n, a: NewMux(epa, n), b: NewMux(epb, n)}
}

type recvLog struct {
	frames [][]byte
	names  []string
	srcs   []overlay.Address
}

func (l *recvLog) fn() RecvFunc {
	return func(name string, src overlay.Address, frame []byte) {
		l.frames = append(l.frames, append([]byte(nil), frame...))
		l.names = append(l.names, name)
		l.srcs = append(l.srcs, src)
	}
}

func TestUDPSmallFrame(t *testing.T) {
	r := newRig(t, simnet.Config{}, 10_000_000, 64<<10)
	r.a.AddUDP("u")
	udp := r.b.AddUDP("u")
	var log recvLog
	r.b.SetRecv(log.fn())
	tr, err := r.a.ByName("u")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	r.sched.RunUntilIdle()
	if len(log.frames) != 1 || string(log.frames[0]) != "hello" || log.names[0] != "u" || log.srcs[0] != 1 {
		t.Fatalf("recv log = %+v", log)
	}
	if s := udp.Stats(); s.FramesRecv != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestUDPFragmentationRoundTrip(t *testing.T) {
	r := newRig(t, simnet.Config{}, 10_000_000, 1<<20)
	r.a.AddUDP("u")
	r.b.AddUDP("u")
	var log recvLog
	r.b.SetRecv(log.fn())
	tr, _ := r.a.ByName("u")
	big := make([]byte, 10_000)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := tr.Send(2, big); err != nil {
		t.Fatal(err)
	}
	r.sched.RunUntilIdle()
	if len(log.frames) != 1 || !bytes.Equal(log.frames[0], big) {
		t.Fatalf("fragmented frame corrupted (got %d frames)", len(log.frames))
	}
}

func TestUDPFragmentLossDropsWholeFrame(t *testing.T) {
	r := newRig(t, simnet.Config{LossRate: 0.3}, 10_000_000, 1<<20)
	r.a.AddUDP("u")
	r.b.AddUDP("u")
	var log recvLog
	r.b.SetRecv(log.fn())
	tr, _ := r.a.ByName("u")
	sent := 50
	for i := 0; i < sent; i++ {
		if err := tr.Send(2, make([]byte, 5000)); err != nil {
			t.Fatal(err)
		}
		r.sched.RunFor(50 * time.Millisecond)
	}
	r.sched.RunUntilIdle()
	if len(log.frames) >= sent {
		t.Fatalf("expected frame losses, got %d/%d", len(log.frames), sent)
	}
	for _, f := range log.frames {
		if len(f) != 5000 {
			t.Fatalf("partial frame delivered: %d bytes", len(f))
		}
	}
}

func TestTCPReliableInOrderUnderLoss(t *testing.T) {
	r := newRig(t, simnet.Config{LossRate: 0.05}, 10_000_000, 1<<20)
	r.a.AddTCP("t")
	r.b.AddTCP("t")
	var log recvLog
	r.b.SetRecv(log.fn())
	tr, _ := r.a.ByName("t")
	const n = 200
	for i := 0; i < n; i++ {
		frame := []byte(fmt.Sprintf("frame-%04d", i))
		if err := tr.Send(2, frame); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.RunFor(5 * time.Minute)
	if len(log.frames) != n {
		t.Fatalf("delivered %d/%d frames", len(log.frames), n)
	}
	for i, f := range log.frames {
		if want := fmt.Sprintf("frame-%04d", i); string(f) != want {
			t.Fatalf("frame %d out of order: %q", i, f)
		}
	}
	if s := tr.Stats(); s.Retransmits == 0 {
		t.Fatalf("expected retransmissions under loss, stats=%+v", s)
	}
}

func TestSWPReliableUnderLoss(t *testing.T) {
	r := newRig(t, simnet.Config{LossRate: 0.05}, 10_000_000, 1<<20)
	r.a.AddSWP("s", 8)
	r.b.AddSWP("s", 8)
	var log recvLog
	r.b.SetRecv(log.fn())
	tr, _ := r.a.ByName("s")
	const n = 100
	for i := 0; i < n; i++ {
		if err := tr.Send(2, []byte(fmt.Sprintf("pkt-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.RunFor(5 * time.Minute)
	if len(log.frames) != n {
		t.Fatalf("delivered %d/%d", len(log.frames), n)
	}
	for i, f := range log.frames {
		if want := fmt.Sprintf("pkt-%03d", i); string(f) != want {
			t.Fatalf("frame %d = %q, want %q", i, f, want)
		}
	}
}

func TestTCPLargeTransferThroughput(t *testing.T) {
	// 1 Mbps bottleneck: a 250 KB transfer should take roughly 2 s and
	// must complete (congestion control adapts to the bottleneck).
	r := newRig(t, simnet.Config{}, 1_000_000, 50*1500)
	r.a.AddTCP("t")
	r.b.AddTCP("t")
	var log recvLog
	r.b.SetRecv(log.fn())
	var doneAt time.Duration = -1
	r.b.SetRecv(func(_ string, _ overlay.Address, f []byte) {
		log.frames = append(log.frames, append([]byte(nil), f...))
		doneAt = r.sched.Elapsed()
	})
	tr, _ := r.a.ByName("t")
	payload := make([]byte, 250_000)
	if err := tr.Send(2, payload); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(2 * time.Minute)
	if len(log.frames) != 1 || len(log.frames[0]) != len(payload) {
		t.Fatalf("transfer incomplete: %d frames", len(log.frames))
	}
	if doneAt > 30*time.Second {
		t.Fatalf("250KB over 1Mbps took %v", doneAt)
	}
	// 250 KB over a 1 Mbps pipe needs at least 2 s even at full utilization.
	if doneAt < 2*time.Second {
		t.Fatalf("transfer finished impossibly fast: %v", doneAt)
	}
}

func TestTCPBacksOffSWPDoesNot(t *testing.T) {
	// Drive both disciplines through the same narrow, shallow-queued link
	// and compare emitted segments per delivered byte: TCP must be markedly
	// more economical because it backs off, SWP blasts its window.
	run := func(build func(m *Mux) Transport, install func(m *Mux)) (segments, retrans uint64, delivered int) {
		r := newRig(t, simnet.Config{}, 500_000, 5*1500)
		tr := build(r.a)
		install(r.b)
		var got int
		r.b.SetRecv(func(_ string, _ overlay.Address, f []byte) { got += len(f) })
		for i := 0; i < 40; i++ {
			_ = tr.Send(2, make([]byte, 10_000))
		}
		r.sched.RunFor(3 * time.Minute)
		s := tr.Stats()
		return s.Segments, s.Retransmits, got
	}
	tcpSeg, tcpRet, tcpGot := run(
		func(m *Mux) Transport { return m.AddTCP("x") },
		func(m *Mux) { m.AddTCP("x") })
	swpSeg, swpRet, swpGot := run(
		func(m *Mux) Transport { return m.AddSWP("x", 32) },
		func(m *Mux) { m.AddSWP("x", 32) })
	if tcpGot != 400_000 || swpGot != 400_000 {
		t.Fatalf("incomplete: tcp=%d swp=%d", tcpGot, swpGot)
	}
	if swpRet <= tcpRet {
		t.Fatalf("SWP should retransmit more on a congested link: tcp=%d swp=%d", tcpRet, swpRet)
	}
	if swpSeg <= tcpSeg {
		t.Fatalf("SWP should emit more segments: tcp=%d swp=%d", tcpSeg, swpSeg)
	}
}

func TestHeadOfLineBlockingAcrossTransports(t *testing.T) {
	// The paper's motivation for multiple transports: a bulk transfer on one
	// TCP instance must not delay a tiny control message on another.
	r := newRig(t, simnet.Config{}, 1_000_000, 20*1500)
	bulkA := r.a.AddTCP("bulk")
	ctrlA := r.a.AddTCP("ctrl")
	r.b.AddTCP("bulk")
	r.b.AddTCP("ctrl")
	var ctrlAt time.Duration = -1
	var bulkDone time.Duration = -1
	r.b.SetRecv(func(name string, _ overlay.Address, f []byte) {
		switch name {
		case "ctrl":
			ctrlAt = r.sched.Elapsed()
		case "bulk":
			bulkDone = r.sched.Elapsed()
		}
	})
	if err := bulkA.Send(2, make([]byte, 500_000)); err != nil {
		t.Fatal(err)
	}
	if err := ctrlA.Send(2, []byte("urgent")); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(2 * time.Minute)
	if ctrlAt < 0 || bulkDone < 0 {
		t.Fatalf("undelivered: ctrl=%v bulk=%v", ctrlAt, bulkDone)
	}
	if ctrlAt > bulkDone/4 {
		t.Fatalf("control message waited for bulk: ctrl at %v, bulk done %v", ctrlAt, bulkDone)
	}
	// And on a single shared instance it *does* wait — the blocked-transport
	// behaviour the grammar's multiple transports exist to avoid.
	r2 := newRig(t, simnet.Config{}, 1_000_000, 20*1500)
	one := r2.a.AddTCP("one")
	r2.b.AddTCP("one")
	var urgentAt time.Duration = -1
	var frames int
	r2.b.SetRecv(func(name string, _ overlay.Address, f []byte) {
		frames++
		if string(f) == "urgent" {
			urgentAt = r2.sched.Elapsed()
		}
	})
	_ = one.Send(2, make([]byte, 500_000))
	_ = one.Send(2, []byte("urgent"))
	r2.sched.RunFor(2 * time.Minute)
	if urgentAt < 0 {
		t.Fatal("urgent frame lost")
	}
	if urgentAt < ctrlAt*4 {
		t.Fatalf("expected head-of-line blocking on shared instance: shared=%v dedicated=%v", urgentAt, ctrlAt)
	}
}

func TestQueuedBytesVisibility(t *testing.T) {
	r := newRig(t, simnet.Config{}, 100_000, 10*1500)
	tr := r.a.AddTCP("t")
	r.b.AddTCP("t")
	r.b.SetRecv(func(string, overlay.Address, []byte) {})
	_ = tr.Send(2, make([]byte, 100_000))
	if q := tr.QueuedBytes(2); q == 0 {
		t.Fatal("bytes should be queued on a slow link")
	}
	if q := tr.QueuedBytes(99); q != 0 {
		t.Fatalf("unknown peer queued = %d", q)
	}
	r.sched.RunFor(time.Minute)
	if q := tr.QueuedBytes(2); q != 0 {
		t.Fatalf("queue should drain, still %d", q)
	}
}

func TestSendQueueCap(t *testing.T) {
	r := newRig(t, simnet.Config{}, 10_000, 2*1500) // 10 Kbps: nothing drains
	tr := r.a.AddTCP("t")
	r.b.AddTCP("t")
	var err error
	for i := 0; i < 100; i++ {
		if err = tr.Send(2, make([]byte, 1<<20)); err != nil {
			break
		}
	}
	if err != ErrQueueFull {
		t.Fatalf("expected ErrQueueFull, got %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	r := newRig(t, simnet.Config{}, 1_000_000, 10*1500)
	tcp := r.a.AddTCP("t")
	u := r.a.AddUDP("u")
	if err := tcp.Send(2, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("tcp oversize err = %v", err)
	}
	if err := u.Send(2, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("udp oversize err = %v", err)
	}
}

func TestByNameAndDuplicates(t *testing.T) {
	r := newRig(t, simnet.Config{}, 1_000_000, 10*1500)
	r.a.AddTCP("HIGH")
	if _, err := r.a.ByName("HIGH"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.a.ByName("LOW"); err == nil {
		t.Fatal("unknown name should error")
	}
	if got := len(r.a.Transports()); got != 1 {
		t.Fatalf("Transports len = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate transport name should panic")
		}
	}()
	r.a.AddUDP("HIGH")
}

func TestKindsReported(t *testing.T) {
	r := newRig(t, simnet.Config{}, 1_000_000, 10*1500)
	if k := r.a.AddTCP("a").Kind(); k != overlay.TCP {
		t.Fatalf("tcp kind = %v", k)
	}
	if k := r.a.AddUDP("b").Kind(); k != overlay.UDP {
		t.Fatalf("udp kind = %v", k)
	}
	if k := r.a.AddSWP("c", 0).Kind(); k != overlay.SWP {
		t.Fatalf("swp kind = %v", k)
	}
}

func TestCorruptDatagramsIgnored(t *testing.T) {
	r := newRig(t, simnet.Config{}, 1_000_000, 10*1500)
	r.a.AddTCP("t")
	r.b.AddTCP("t")
	var log recvLog
	r.b.SetRecv(log.fn())
	// Raw garbage straight onto the endpoint: unknown tid, short payloads.
	ep, _ := r.net.Endpoint(1)
	_ = ep // the mux owns the endpoint recv; send from a third party instead
	g := r.net.Graph()
	_ = g
	// Short/garbage datagrams from node 1's mux-owned endpoint can't be
	// forged here, so exercise the parse paths directly.
	r.b.onDatagram(1, nil)
	r.b.onDatagram(1, []byte{0})
	r.b.onDatagram(1, []byte{99, 0, 1, 2})       // unknown tid
	r.b.onDatagram(1, []byte{0, kindRelData, 1}) // short rel header
	r.b.onDatagram(1, []byte{0, kindRelAck, 1})  // short ack
	r.b.onDatagram(1, []byte{0, kindUDPFrag})    // wrong kind for tcp: ignored
	r.sched.RunUntilIdle()
	if len(log.frames) != 0 {
		t.Fatalf("garbage produced frames: %d", len(log.frames))
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	r := newRig(t, simnet.Config{LossRate: 0.02}, 5_000_000, 1<<20)
	ta := r.a.AddTCP("t")
	tb := r.b.AddTCP("t")
	var aGot, bGot int
	r.a.SetRecv(func(_ string, _ overlay.Address, f []byte) { aGot++ })
	r.b.SetRecv(func(_ string, _ overlay.Address, f []byte) { bGot++ })
	for i := 0; i < 50; i++ {
		_ = ta.Send(2, []byte("a->b"))
		_ = tb.Send(1, []byte("b->a"))
	}
	r.sched.RunFor(time.Minute)
	if aGot != 50 || bGot != 50 {
		t.Fatalf("a=%d b=%d, want 50/50", aGot, bGot)
	}
}

// TestReliablePeerRestart is the boot-stamp regression test: a peer that
// crashes and restarts builds a fresh mux whose stream offsets begin at
// zero, and both directions of every reliable connection must reset and
// keep working instead of wedging on stale sequence state. This is exactly
// what kill/revive churn does to every long-lived node in an experiment.
func TestReliablePeerRestart(t *testing.T) {
	for _, kind := range []string{"tcp", "swp"} {
		t.Run(kind, func(t *testing.T) {
			r := newRig(t, simnet.Config{}, 10_000_000, 64<<10)
			add := func(m *Mux) Transport {
				if kind == "tcp" {
					return m.AddTCP("t")
				}
				return m.AddSWP("t", 8)
			}
			ta := add(r.a)
			add(r.b)
			var logB recvLog
			r.b.SetRecv(logB.fn())
			if err := ta.Send(2, []byte("before")); err != nil {
				t.Fatal(err)
			}
			r.sched.RunFor(time.Second)
			if len(logB.frames) != 1 || string(logB.frames[0]) != "before" {
				t.Fatalf("baseline frame lost: %q", logB.frames)
			}

			// Crash and restart node 1: detach the endpoint, advance the
			// clock (a restart is never instantaneous), and build the fresh
			// incarnation's mux. Its stream restarts at offset zero with a
			// newer boot stamp.
			r.a.Close()
			if err := r.net.Detach(1); err != nil {
				t.Fatal(err)
			}
			r.sched.RunFor(50 * time.Millisecond)
			epa, err := r.net.Endpoint(1)
			if err != nil {
				t.Fatal(err)
			}
			a2 := NewMux(epa, r.net)
			ta2 := add(a2)
			if err := ta2.Send(2, []byte("after-restart")); err != nil {
				t.Fatal(err)
			}
			r.sched.RunFor(2 * time.Second)
			if len(logB.frames) != 2 || string(logB.frames[1]) != "after-restart" {
				t.Fatalf("restarted sender wedged: got %d frames %q", len(logB.frames), logB.frames)
			}

			// And the surviving side must also be able to send toward the
			// restarted peer: node 2's old sender half reset on seeing the
			// new boot, so its stream restarts at zero too.
			var logA recvLog
			a2.SetRecv(logA.fn())
			tb, err := r.b.ByName("t")
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.Send(1, []byte("welcome-back")); err != nil {
				t.Fatal(err)
			}
			r.sched.RunFor(2 * time.Second)
			if len(logA.frames) != 1 || string(logA.frames[0]) != "welcome-back" {
				t.Fatalf("survivor-to-restartee wedged: %q", logA.frames)
			}
		})
	}
}

// TestReliableStaleInflightAfterRestart covers the reverse-direction wedge:
// the SURVIVOR has a partially-acknowledged stream in flight when the peer
// dies. Its RTO retransmissions (old stream, mid-stream offsets) reach the
// revived incarnation and land in the fresh out-of-order buffer; when the
// survivor finally learns of the restart and restarts its own stream at
// offset zero, the receiver must discard that stale buffer instead of
// splicing dead-incarnation bytes into the new stream once it grows past
// their offsets.
func TestReliableStaleInflightAfterRestart(t *testing.T) {
	r := newRig(t, simnet.Config{}, 10_000_000, 64<<10)
	r.a.AddTCP("t")
	tb := r.b.AddTCP("t")
	var logA1 recvLog
	r.a.SetRecv(logA1.fn())

	// B streams 16 KB toward A and gets part of it acknowledged, so B has
	// recorded A's boot and sndUna sits mid-stream when A dies.
	old := bytes.Repeat([]byte{0xAB}, 16<<10)
	if err := tb.Send(1, old); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(25 * time.Millisecond)
	if len(logA1.frames) != 0 {
		t.Fatal("old frame fully delivered before the kill; shrink the window")
	}
	r.a.Close()
	if err := r.net.Detach(1); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(1 * time.Second)

	// Revive A. B still knows nothing: its RTOs keep retransmitting the
	// old stream at mid-stream offsets, which the fresh incarnation can
	// only buffer out of order (its rcvNxt is zero).
	epa, err := r.net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	a2 := NewMux(epa, r.net)
	ta2 := a2.AddTCP("t")
	var logA recvLog
	a2.SetRecv(logA.fn())
	var logB recvLog
	r.b.SetRecv(logB.fn())
	r.sched.RunFor(8 * time.Second) // several RTO rounds of stale segments

	// Now the reborn node announces itself; B detects the new boot, drops
	// the dead stream, and sends fresh frames that must cross the stale
	// offsets intact.
	if err := ta2.Send(2, []byte("hello-from-reborn")); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Second)
	tb2, err := r.b.ByName("t")
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xCD}, 8<<10)
	if err := tb2.Send(1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := tb2.Send(1, big); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(10 * time.Second)

	if len(logB.frames) == 0 || string(logB.frames[0]) != "hello-from-reborn" {
		t.Fatalf("survivor never heard the reborn node: %q", logB.frames)
	}
	gotFresh, gotBig := false, false
	for _, f := range logA.frames {
		switch {
		case string(f) == "fresh":
			gotFresh = true
		case bytes.Equal(f, big):
			gotBig = true
		default:
			n := len(f)
			if n > 16 {
				n = 16
			}
			t.Fatalf("corrupt frame spliced from a dead stream: %d bytes %x...", len(f), f[:n])
		}
	}
	if !gotFresh || !gotBig {
		t.Fatalf("post-restart stream wedged: fresh=%v big=%v (%d frames)", gotFresh, gotBig, len(logA.frames))
	}
}
