package transport

import (
	"encoding/binary"
	"time"

	"macedon/internal/overlay"
)

// Datagram kinds within a transport instance.
const (
	kindUDPSingle = 0 // whole frame in one datagram
	kindUDPFrag   = 1 // [msgID u32][frag u16][nfrags u16][chunk]
	kindRelData   = 2 // [offset u64][payload]
	kindRelAck    = 3 // [cumAck u64][dupHint u8]
)

const fragHeaderLen = 8
const fragTimeout = 30 * time.Second
const maxPendingReassemblies = 64

// udp is the unreliable discipline: datagrams map straight onto the
// substrate, with transparent fragmentation for frames above the MTU.
// Fragment loss drops the whole frame, as IP fragmentation would.
type udp struct {
	name  string
	id    uint8
	mux   *Mux
	stats Stats

	nextMsgID uint32
	reasm     map[overlay.Address]map[uint32]*reassembly
}

type reassembly struct {
	parts    [][]byte
	missing  int
	deadline time.Time
}

func (u *udp) Name() string                    { return u.name }
func (u *udp) Kind() overlay.TransportKind     { return overlay.UDP }
func (u *udp) setID(id uint8)                  { u.id = id }
func (u *udp) QueuedBytes(overlay.Address) int { return 0 }

func (u *udp) Stats() Stats {
	u.mux.mu.Lock()
	defer u.mux.mu.Unlock()
	return u.stats
}

func (u *udp) Send(dst overlay.Address, frame []byte) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooLarge
	}
	u.mux.mu.Lock()
	defer u.mux.mu.Unlock()
	u.stats.FramesSent++
	u.stats.BytesSent += uint64(len(frame))
	if len(frame) <= u.mux.mss(0) {
		u.stats.Segments++
		return u.mux.emit(u.id, kindUDPSingle, dst, frame)
	}
	mss := u.mux.mss(fragHeaderLen)
	nfrags := (len(frame) + mss - 1) / mss
	if nfrags > 0xffff {
		return ErrFrameTooLarge
	}
	u.nextMsgID++
	id := u.nextMsgID
	for f := 0; f < nfrags; f++ {
		lo := f * mss
		hi := lo + mss
		if hi > len(frame) {
			hi = len(frame)
		}
		body := make([]byte, fragHeaderLen+hi-lo)
		binary.BigEndian.PutUint32(body[0:], id)
		binary.BigEndian.PutUint16(body[4:], uint16(f))
		binary.BigEndian.PutUint16(body[6:], uint16(nfrags))
		copy(body[fragHeaderLen:], frame[lo:hi])
		u.stats.Segments++
		if err := u.mux.emit(u.id, kindUDPFrag, dst, body); err != nil {
			return err
		}
	}
	return nil
}

func (u *udp) handle(src overlay.Address, kind uint8, body []byte) {
	switch kind {
	case kindUDPSingle:
		u.stats.FramesRecv++
		u.stats.BytesRecv += uint64(len(body))
		u.mux.deliver(u.name, src, body)
	case kindUDPFrag:
		u.handleFrag(src, body)
	}
}

func (u *udp) handleFrag(src overlay.Address, body []byte) {
	if len(body) < fragHeaderLen {
		return
	}
	id := binary.BigEndian.Uint32(body[0:])
	frag := int(binary.BigEndian.Uint16(body[4:]))
	nfrags := int(binary.BigEndian.Uint16(body[6:]))
	if nfrags == 0 || frag >= nfrags {
		return
	}
	if u.reasm == nil {
		u.reasm = make(map[overlay.Address]map[uint32]*reassembly)
	}
	peer := u.reasm[src]
	if peer == nil {
		peer = make(map[uint32]*reassembly)
		u.reasm[src] = peer
	}
	u.expire(peer)
	r := peer[id]
	if r == nil {
		if len(peer) >= maxPendingReassemblies {
			u.stats.FragsDropped++
			return
		}
		r = &reassembly{parts: make([][]byte, nfrags), missing: nfrags,
			deadline: u.mux.clock.Now().Add(fragTimeout)}
		peer[id] = r
	}
	if len(r.parts) != nfrags || r.parts[frag] != nil {
		return // duplicate or inconsistent geometry
	}
	chunk := append([]byte(nil), body[fragHeaderLen:]...)
	r.parts[frag] = chunk
	r.missing--
	if r.missing > 0 {
		return
	}
	delete(peer, id)
	var frame []byte
	for _, p := range r.parts {
		frame = append(frame, p...)
	}
	u.stats.FramesRecv++
	u.stats.BytesRecv += uint64(len(frame))
	u.mux.deliver(u.name, src, frame)
}

func (u *udp) expire(peer map[uint32]*reassembly) {
	now := u.mux.clock.Now()
	for id, r := range peer {
		if now.After(r.deadline) {
			delete(peer, id)
			u.stats.FragsDropped++
		}
	}
}
