// Observability-plane integration gates: an end-to-end operation trace
// reconstructed from the report's span records must describe a real route —
// starting at the injecting node, hop-linked through every forward, and
// ending at the node the global-knowledge routing oracle names as the
// key's owner.
package main

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"macedon/internal/harness"
	"macedon/internal/metrics"
	"macedon/internal/obs"
	"macedon/internal/overlay"
	"macedon/internal/scenario"
)

// obsTraceScenario is a churn-free genchord run: with the full population
// stable through the lookup phase, the chord oracle's successor is the
// ground-truth owner of every key.
func obsTraceScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:     "obs-trace-oracle",
		Seed:     909,
		Nodes:    12,
		Routers:  80,
		Protocol: "genchord",
		Join:     scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(6e9)},
		Settle:   scenario.Duration(40e9),
		Drain:    scenario.Duration(10e9),
		Phases: []scenario.Phase{
			{
				Name:     "lookups",
				Duration: scenario.Duration(20e9),
				Workload: &scenario.Workload{Kind: scenario.WlLookups, Rate: 2},
			},
		},
	}
}

// parsedSpan is one decoded span line.
type parsedSpan struct {
	trace      string
	op         int
	at         float64
	kind       string
	node, next int
}

// parseSpanLine decodes the canonical span rendering
// ("trace=… op=… t=…s kind node=… [next=…]").
func parseSpanLine(t *testing.T, line string) parsedSpan {
	t.Helper()
	ps := parsedSpan{next: -1}
	fields := strings.Fields(line)
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			ps.kind = f
			continue
		}
		var err error
		switch k {
		case "trace":
			ps.trace = v
		case "op":
			ps.op, err = strconv.Atoi(v)
		case "t":
			ps.at, err = strconv.ParseFloat(strings.TrimSuffix(v, "s"), 64)
		case "node":
			ps.node, err = strconv.Atoi(v)
		case "next":
			ps.next, err = strconv.Atoi(v)
		}
		if err != nil {
			t.Fatalf("bad span field %q in %q: %v", f, line, err)
		}
	}
	if ps.kind == "" || ps.trace == "" {
		t.Fatalf("span line %q missing kind or trace", line)
	}
	return ps
}

// TestObsTracePropagation replays a scenario with full trace sampling and
// checks every delivered lookup's span chain against the compiled schedule
// and the chord routing oracle.
func TestObsTracePropagation(t *testing.T) {
	s := obsTraceScenario()
	sched, err := scenario.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	opByID := make(map[int]scenario.Op)
	for _, op := range sched.Ops {
		if op.Kind == scenario.OpLookup {
			opByID[op.ID] = op
		}
	}
	if len(opByID) == 0 {
		t.Fatal("schedule compiled no lookups")
	}
	addrs, err := harness.TopologyAddrs(s.Nodes, s.Routers, s.Seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle := metrics.NewChordOracle(addrs)

	rep, err := harness.RunScenarioShardsObs(s, 2, harness.ObsOptions{Enabled: true, TraceSample: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Obs == nil || len(rep.Obs.Spans) == 0 {
		t.Fatal("run produced no span records")
	}

	chains := make(map[int][]parsedSpan)
	for _, line := range rep.Obs.Spans {
		ps := parseSpanLine(t, line)
		chains[ps.op] = append(chains[ps.op], ps) // span lines are already in canonical (time) order
	}

	delivered, multiHop := 0, 0
	for opID, chain := range chains {
		op, ok := opByID[opID]
		if !ok {
			t.Fatalf("op %d traced but not in the compiled schedule", opID)
		}
		wantTrace := obs.MintTraceID(s.Seed, opID)
		if chain[0].kind != "inject" {
			t.Fatalf("op %d: chain starts with %q, want inject", opID, chain[0].kind)
		}
		if chain[0].node != op.Node {
			t.Fatalf("op %d: injected at node %d, schedule says node %d", opID, chain[0].node, op.Node)
		}
		last := chain[0]
		for _, ps := range chain {
			if want := fmt.Sprintf("%016x", uint64(wantTrace)); ps.trace != want {
				t.Fatalf("op %d: trace id %s, want %s", opID, ps.trace, want)
			}
			if ps.at < last.at {
				t.Fatalf("op %d: span times regress (%f after %f)", opID, ps.at, last.at)
			}
			last = ps
		}
		// Forward linkage: each forward names the node the next span runs on.
		for i := 1; i < len(chain); i++ {
			prev, cur := chain[i-1], chain[i]
			if prev.kind == "forward" && prev.next != cur.node {
				t.Fatalf("op %d: forward at node %d names next=%d but the chain continues at node %d",
					opID, prev.node, prev.next, cur.node)
			}
		}
		final := chain[len(chain)-1]
		if final.kind != "deliver" {
			continue // dropped in flight: inject (and maybe forwards) without a delivery
		}
		delivered++
		if len(chain) > 2 {
			multiHop++
		}
		if owner := oracle.Successor(overlay.Key(op.Key)); addrs[final.node] != owner {
			t.Fatalf("op %d: delivered at node %d (%v), oracle owner is %v",
				opID, final.node, addrs[final.node], owner)
		}
	}
	if delivered == 0 {
		t.Fatal("no lookup completed with a deliver span")
	}
	if multiHop == 0 {
		t.Fatal("no multi-hop trace recorded; forward spans are not propagating")
	}
	t.Logf("validated %d delivered traces (%d multi-hop) of %d lookups", delivered, multiHop, len(opByID))
}
