// Scale acceptance: a 10,000-node RandTree churn scenario must run to
// completion on the sharded event loop. The run takes minutes of wall
// clock, so it is gated behind MACEDON_SCALE=1 (CI runs it in a dedicated
// job; `make` of the default test target skips it).
package main

import (
	"os"
	"runtime"
	"testing"
	"time"

	"macedon/internal/harness"
	"macedon/internal/scenario"
)

func TestScale10kRandTreeChurn(t *testing.T) {
	if os.Getenv("MACEDON_SCALE") == "" {
		t.Skip("set MACEDON_SCALE=1 to run the 10k-node scenario")
	}
	s := &scenario.Scenario{
		Name:     "randtree-10k-churn",
		Seed:     2004,
		Nodes:    10_000,
		Routers:  2_500,
		Protocol: "randtree",
		Join:     scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(20 * time.Second)},
		Settle:   scenario.Duration(30 * time.Second),
		Drain:    scenario.Duration(10 * time.Second),
		Phases: []scenario.Phase{
			{
				Name:     "churn",
				Duration: scenario.Duration(60 * time.Second),
				Churn: &scenario.Churn{
					Model:    "poisson",
					Rate:     2, // ~120 kills over the phase
					Downtime: scenario.Duration(20 * time.Second),
				},
			},
		},
	}
	shards := runtime.GOMAXPROCS(0)
	start := time.Now()
	rep, err := harness.RunScenarioShards(s, shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10k-node churn: %d events, %d kills+revives traced, wall=%s shards=%d",
		rep.EventsRun, len(rep.Trace), time.Since(start).Round(time.Second), shards)
	last := rep.Phases[len(rep.Phases)-1]
	if last.LiveNodes < 9_800 {
		t.Fatalf("population collapsed: live=%d", last.LiveNodes)
	}
	if rep.Final.Delivered == 0 {
		t.Fatal("no traffic delivered at 10k nodes")
	}
}
