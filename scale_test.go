// Scale acceptance: large RandTree churn scenarios must run to completion
// on the sharded event loop. The runs take minutes of wall clock, so they
// are gated behind MACEDON_SCALE=1 (the CI perf lane runs them in a
// dedicated job; `go test ./...` skips them).
//
// Every population size, churn knob, and pass/fail threshold lives in the
// scaleCases table below — the single source the CI job and local
// MACEDON_SCALE=1 runs both read, so the two can't drift.
package main

import (
	"os"
	"runtime"
	"testing"
	"time"

	"macedon/internal/harness"
	"macedon/internal/scenario"
	"macedon/internal/simnet"
)

// scaleCase pins one scale-acceptance scenario: the population, the churn
// storm it must survive, the partitioner it runs under, and the acceptance
// thresholds.
type scaleCase struct {
	name        string
	nodes       int
	routers     int
	partitioner string // "" = striped default
	joinWindow  time.Duration
	settle      time.Duration
	churnFor    time.Duration
	churnRate   float64 // kills per second (poisson)
	downtime    time.Duration
	drain       time.Duration
	minLive     int // population floor after the churn phase
}

// scaleCases is THE one place scale thresholds live. The CI perf job runs
// `-run Scale` against this table and local MACEDON_SCALE=1 runs read the
// same rows, so a threshold bump lands in both or neither.
var scaleCases = map[string]scaleCase{
	"10k": {
		name:       "randtree-10k-churn",
		nodes:      10_000,
		routers:    2_500,
		joinWindow: 20 * time.Second,
		settle:     30 * time.Second,
		churnFor:   60 * time.Second,
		churnRate:  2, // ~120 kills over the phase
		downtime:   20 * time.Second,
		drain:      10 * time.Second,
		minLive:    9_800,
	},
	// The 100k trajectory point: five times the population, routed through
	// the access-link decomposition (trees only toward core routers) and
	// placed by the latency-aware partitioner so the conservative lookahead
	// window stays wide at scale.
	"50k": {
		name:        "randtree-50k-churn",
		nodes:       50_000,
		routers:     5_000,
		partitioner: simnet.PartitionerLatency,
		joinWindow:  20 * time.Second,
		settle:      20 * time.Second,
		churnFor:    30 * time.Second,
		churnRate:   2, // ~60 kills over the phase
		downtime:    15 * time.Second,
		drain:       10 * time.Second,
		minLive:     49_800,
	},
}

// runScaleCase executes one row of the table and enforces its thresholds.
func runScaleCase(t *testing.T, c scaleCase) {
	if os.Getenv("MACEDON_SCALE") == "" {
		t.Skipf("set MACEDON_SCALE=1 to run the %d-node scenario", c.nodes)
	}
	s := &scenario.Scenario{
		Name:     c.name,
		Seed:     2004,
		Nodes:    c.nodes,
		Routers:  c.routers,
		Protocol: "randtree",
		Join:     scenario.JoinSpec{Process: "staggered", Window: scenario.Duration(c.joinWindow)},
		Settle:   scenario.Duration(c.settle),
		Drain:    scenario.Duration(c.drain),
		Phases: []scenario.Phase{
			{
				Name:     "churn",
				Duration: scenario.Duration(c.churnFor),
				Churn: &scenario.Churn{
					Model:    "poisson",
					Rate:     c.churnRate,
					Downtime: scenario.Duration(c.downtime),
				},
			},
		},
	}
	shards := runtime.GOMAXPROCS(0)
	start := time.Now()
	rep, err := harness.RunScenarioExec(s, harness.ExecOptions{
		Shards:      shards,
		Partitioner: c.partitioner,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d-node churn: %d events, %d kills+revives traced, wall=%s shards=%d partitioner=%q",
		c.nodes, rep.EventsRun, len(rep.Trace), time.Since(start).Round(time.Second), shards, c.partitioner)
	last := rep.Phases[len(rep.Phases)-1]
	if last.LiveNodes < c.minLive {
		t.Fatalf("population collapsed: live=%d (floor %d)", last.LiveNodes, c.minLive)
	}
	if rep.Final.Delivered == 0 {
		t.Fatalf("no traffic delivered at %d nodes", c.nodes)
	}
}

func TestScale10kRandTreeChurn(t *testing.T) {
	runScaleCase(t, scaleCases["10k"])
}

// TestScale50kRandTreeChurn is the 100k-trajectory acceptance: a 50,000-node
// population under churn, latency-partitioned, completing on the pooled
// event hot path.
func TestScale50kRandTreeChurn(t *testing.T) {
	runScaleCase(t, scaleCases["50k"])
}
